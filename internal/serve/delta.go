// Package serve is the million-client read path over the streaming
// estimation engines: every publication of a stream.Engine is encoded
// exactly once (JSON, plus gzip on demand) into an immutable cache
// entry that all clients share, consecutive publications are delta
// encoded as sparse changed-coordinate patches (backbone demand drifts
// slowly between publications — the same property the engines' warm
// starts exploit — so the wire format exploits it too), and a per-
// tenant broadcast Hub multiplexes every long-poll waiter and SSE
// subscriber off one WaitVersion loop instead of one goroutine and one
// deep copy per client. On top of the hub, Server cuts the versioned
// /v1 HTTP API (ETag conditional gets, full-vs-delta content
// negotiation, SSE event streams, a uniform error envelope) while
// keeping cmd/tmserve's legacy routes byte-compatible as thin aliases.
package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/linalg"
	"repro/internal/stream"
)

// DeltaFormat is the version tag every encoded delta carries. Apply
// rejects unknown formats instead of guessing.
const DeltaFormat = 1

// VecPatch is a sparse edit of one snapshot vector: resize to Len
// (new coordinates start at zero, a nil source vector counts as all
// zeros), then set V[k] at index I[k] for every k. A nil *VecPatch in
// a Delta means the vector is carried over from the base unchanged.
type VecPatch struct {
	Len int       `json:"len"`
	I   []int     `json:"i,omitempty"`
	V   []float64 `json:"v,omitempty"`
}

// DeltaScalars carries every non-vector Snapshot field wholesale —
// they are a few dozen bytes against kilobytes of matrix, so sparse
// encoding them would complicate the apply rule for nothing.
type DeltaScalars struct {
	Interval          int           `json:"interval"`
	Window            int           `json:"window"`
	Covered           int           `json:"covered"`
	Skipped           int           `json:"skipped"`
	Drift             float64       `json:"drift"`
	TopologyEpoch     int           `json:"topology_epoch"`
	AnomalyActive     bool          `json:"anomaly_active,omitempty"`
	Anomalies         int           `json:"anomalies,omitempty"`
	GravityMRE        float64       `json:"gravity_mre"`
	ResolveMethod     stream.Method `json:"resolve_method,omitempty"`
	ResolveMRE        float64       `json:"resolve_mre"`
	ResolveInterval   int           `json:"resolve_interval"`
	ResolveDuration   int64         `json:"resolve_duration_ns"`
	ResolveIterations int           `json:"resolve_iterations"`
	ResolveWarm       bool          `json:"resolve_warm"`
	TimeRFC3339       string        `json:"time"`
}

// Delta is one snapshot-to-snapshot patch. The apply rule (see Apply):
// starting from the snapshot whose Version == From, replace every
// scalar field with Set, apply each vector patch (resize to Len, then
// sparse writes), set Resolve to nil when ResolveNil, and stamp the
// result Version = To. Applying a delta to the snapshot it was computed
// from reproduces the target snapshot byte-exactly under json.Marshal.
type Delta struct {
	Format int    `json:"format"`
	From   uint64 `json:"from"`
	To     uint64 `json:"to"`

	Set DeltaScalars `json:"set"`

	Gravity *VecPatch `json:"gravity,omitempty"`
	Mean    *VecPatch `json:"mean,omitempty"`
	Fanouts *VecPatch `json:"fanouts,omitempty"`
	Resolve *VecPatch `json:"resolve,omitempty"`
	// ResolveNil records a Resolve that went away (non-nil to nil).
	// Today's engines never unpublish a re-solve, but the format must
	// not silently mis-apply if one ever does.
	ResolveNil bool `json:"resolve_nil,omitempty"`
}

// diffVec computes the sparse patch turning prev into next, nil when
// they are identical (same length, same values).
func diffVec(prev, next linalg.Vector) *VecPatch {
	if len(prev) == len(next) {
		same := true
		for i := range next {
			if prev[i] != next[i] {
				same = false
				break
			}
		}
		if same {
			return nil
		}
	}
	p := &VecPatch{Len: len(next)}
	for i := range next {
		var base float64
		if i < len(prev) {
			base = prev[i]
		}
		if next[i] != base {
			p.I = append(p.I, i)
			p.V = append(p.V, next[i])
		}
	}
	return p
}

// applyVec executes one patch on a (possibly nil) base vector,
// returning a fresh vector — the base is never mutated.
func applyVec(base linalg.Vector, p *VecPatch) (linalg.Vector, error) {
	if p == nil {
		if base == nil {
			return nil, nil
		}
		return base.Clone(), nil
	}
	out := linalg.NewVector(p.Len)
	copy(out, base) // copy stops at min(len(base), p.Len)
	if len(p.I) != len(p.V) {
		return nil, fmt.Errorf("serve: vector patch has %d indices but %d values", len(p.I), len(p.V))
	}
	for k, i := range p.I {
		if i < 0 || i >= p.Len {
			return nil, fmt.Errorf("serve: vector patch index %d out of range [0,%d)", i, p.Len)
		}
		out[i] = p.V[k]
	}
	return out, nil
}

// ComputeDelta builds the patch turning prev into next. It never fails:
// any pair of snapshots (including dimension changes across a topology
// swap and Resolve nil transitions) has a delta, though a large one may
// not be worth the wire (see EncodeDelta's ratio fallback).
func ComputeDelta(prev, next stream.Snapshot) *Delta {
	d := &Delta{
		Format: DeltaFormat,
		From:   prev.Version,
		To:     next.Version,
		Set: DeltaScalars{
			Interval:          next.Interval,
			Window:            next.Window,
			Covered:           next.Covered,
			Skipped:           next.Skipped,
			Drift:             next.Drift,
			TopologyEpoch:     next.TopologyEpoch,
			AnomalyActive:     next.AnomalyActive,
			Anomalies:         next.Anomalies,
			GravityMRE:        next.GravityMRE,
			ResolveMethod:     next.ResolveMethod,
			ResolveMRE:        next.ResolveMRE,
			ResolveInterval:   next.ResolveInterval,
			ResolveDuration:   int64(next.ResolveDuration),
			ResolveIterations: next.ResolveIterations,
			ResolveWarm:       next.ResolveWarm,
			TimeRFC3339:       next.Time.Format(timeLayout),
		},
		Gravity: diffVec(prev.Gravity, next.Gravity),
		Mean:    diffVec(prev.Mean, next.Mean),
		Fanouts: diffVec(prev.Fanouts, next.Fanouts),
	}
	switch {
	case next.Resolve == nil && prev.Resolve != nil:
		d.ResolveNil = true
	case next.Resolve != nil:
		d.Resolve = diffVec(prev.Resolve, next.Resolve)
	}
	return d
}

// timeLayout round-trips time.Time exactly as encoding/json does (the
// RFC3339Nano layout time.Time.MarshalJSON emits), so an applied
// snapshot marshals byte-identically to the original.
const timeLayout = time.RFC3339Nano

// parseSnapshotTime parses the delta's publication timestamp; the
// parsed value marshals back to the same RFC3339Nano string.
func parseSnapshotTime(s string) (time.Time, error) {
	t, err := time.Parse(timeLayout, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("serve: delta time %q: %w", s, err)
	}
	return t, nil
}

// Apply executes a delta on its base snapshot, returning the target.
// The base must be the snapshot the delta was computed from (checked by
// Version); vectors are never shared with the base, so the result is
// safe to retain and mutate.
func Apply(base stream.Snapshot, d *Delta) (stream.Snapshot, error) {
	if d.Format != DeltaFormat {
		return stream.Snapshot{}, fmt.Errorf("serve: delta format %d, this build applies %d", d.Format, DeltaFormat)
	}
	if base.Version != d.From {
		return stream.Snapshot{}, fmt.Errorf("serve: delta is from version %d, base is %d", d.From, base.Version)
	}
	t, err := parseSnapshotTime(d.Set.TimeRFC3339)
	if err != nil {
		return stream.Snapshot{}, err
	}
	out := stream.Snapshot{
		Version:           d.To,
		Interval:          d.Set.Interval,
		Window:            d.Set.Window,
		Covered:           d.Set.Covered,
		Skipped:           d.Set.Skipped,
		Drift:             d.Set.Drift,
		TopologyEpoch:     d.Set.TopologyEpoch,
		AnomalyActive:     d.Set.AnomalyActive,
		Anomalies:         d.Set.Anomalies,
		GravityMRE:        d.Set.GravityMRE,
		ResolveMethod:     d.Set.ResolveMethod,
		ResolveMRE:        d.Set.ResolveMRE,
		ResolveInterval:   d.Set.ResolveInterval,
		ResolveIterations: d.Set.ResolveIterations,
		ResolveWarm:       d.Set.ResolveWarm,
		Time:              t,
		ResolveDuration:   time.Duration(d.Set.ResolveDuration),
	}
	if out.Gravity, err = applyVec(base.Gravity, d.Gravity); err != nil {
		return stream.Snapshot{}, fmt.Errorf("serve: gravity: %w", err)
	}
	if out.Mean, err = applyVec(base.Mean, d.Mean); err != nil {
		return stream.Snapshot{}, fmt.Errorf("serve: mean: %w", err)
	}
	if out.Fanouts, err = applyVec(base.Fanouts, d.Fanouts); err != nil {
		return stream.Snapshot{}, fmt.Errorf("serve: fanouts: %w", err)
	}
	if !d.ResolveNil {
		if out.Resolve, err = applyVec(base.Resolve, d.Resolve); err != nil {
			return stream.Snapshot{}, fmt.Errorf("serve: resolve: %w", err)
		}
	}
	return out, nil
}

// EncodeDelta computes and encodes the prev→next patch, returning nil
// when the encoded delta is no win: larger than ratio × the full
// encoding (fullSize), e.g. after a re-solve landed (every coordinate
// moved) or a topology swap resized the vectors. Callers then fall back
// to the full snapshot, which is the correct wire choice exactly then.
func EncodeDelta(prev, next stream.Snapshot, fullSize int, ratio float64) []byte {
	if ratio <= 0 {
		ratio = DefaultDeltaRatio
	}
	data, err := json.Marshal(ComputeDelta(prev, next))
	if err != nil {
		return nil // a snapshot that fails to marshal never got here
	}
	if float64(len(data)) > ratio*float64(fullSize) {
		return nil
	}
	return data
}

// DecodeDelta parses one encoded delta.
func DecodeDelta(data []byte) (*Delta, error) {
	var d Delta
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("serve: decode delta: %w", err)
	}
	return &d, nil
}

// DefaultDeltaRatio is the size ratio past which a delta is dropped in
// favor of the full snapshot.
const DefaultDeltaRatio = 0.5
