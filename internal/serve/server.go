package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/stream"
)

// DeltaMediaType is the Accept value that negotiates delta responses on
// /v1/t/{name}/snapshot (and the Content-Type of the delta document).
const DeltaMediaType = "application/vnd.tmserve.delta+json"

// DefaultLongPollTimeout bounds ?min_version long-polls so an abandoned
// stream cannot pin a waiter forever.
const DefaultLongPollTimeout = 30 * time.Second

// Backend is the tenant collection a Server reads through: the fleet
// lifecycle handles plus the fleet-level health view. *fleet.Fleet is
// the in-process implementation; the interface exists so a server can
// front any set of lifecycle handles — which is what makes the serving
// layer indifferent to where tenants actually run.
type Backend interface {
	// Handles returns every tenant's lifecycle handle in declaration
	// order.
	Handles() []fleet.Handle
	// Handle looks a tenant's handle up by name.
	Handle(name string) (fleet.Handle, bool)
	// Statuses reports every tenant's status in declaration order.
	Statuses() []fleet.Status
	// Healthy reports whether no tenant has failed.
	Healthy() bool
}

// NodeAdmin is the cluster-member hook a node-mode daemon plugs into
// its server: it names the node (for the X-Tenant-Node header) and
// adopts tenants on promotion — the receiving half of checkpoint
// handoff. Nil disables the cluster admin routes.
type NodeAdmin interface {
	// NodeName returns this node's name in the cluster config.
	NodeName() string
	// Adopt makes the node host the named tenant, restoring the shipped
	// checkpoint when non-nil (else the node's synced standby copy, else
	// cold).
	Adopt(ctx context.Context, tenant string, cp *stream.Checkpoint) error
}

// Options configures a Server. The zero value of every field selects
// its default.
type Options struct {
	// Single enables the single-tenant alias routes (/snapshot,
	// /metrics) over the fleet's first tenant.
	Single bool
	// Node, when non-nil, enables the cluster-member admin surface:
	// GET /v1/t/{name}/checkpoint (the migration handoff document) and
	// POST /v1/cluster/adopt, plus the X-Tenant-Node response header on
	// tenant-scoped v1 routes.
	Node NodeAdmin
	// MaxWaiters is the per-tenant cap on concurrent long-poll waiters
	// plus SSE subscribers; a tenant spec's max_waiters overrides it.
	// <= 0 selects DefaultMaxWaiters.
	MaxWaiters int
	// CacheVersions, DeltaRatio and SubscriberBuffer tune each tenant's
	// hub; see HubConfig.
	CacheVersions    int
	DeltaRatio       float64
	SubscriberBuffer int
	// LongPollTimeout bounds ?min_version waits; <= 0 selects
	// DefaultLongPollTimeout.
	LongPollTimeout time.Duration
	// Metrics is the registry GET /metrics/prom renders. The daemon
	// shares one registry between the fleet and the server so estimation
	// and serving telemetry land on a single scrape; nil gets a private
	// registry carrying only the serving families.
	Metrics *obs.Registry
}

// Server is the HTTP read path over a fleet: one hub per tenant, the
// versioned /v1 API on top, and the legacy routes as byte-compatible
// aliases. Construct with New, mount with Handler.
type Server struct {
	runCtx  context.Context
	f       Backend
	opts    Options
	single  fleet.Handle // first tenant, backing the single-tenant aliases
	metrics *obs.Registry

	hubMu sync.Mutex
	hubs  map[string]*Hub
}

// New builds a server over a backend and starts one hub observation
// loop per tenant; the loops stop when runCtx is cancelled, which also
// releases every pending long-poll (the daemon's graceful shutdown).
// Tenants adopted after construction (cluster promotion) get their hub
// lazily on first touch.
func New(runCtx context.Context, f Backend, opts Options) *Server {
	if opts.LongPollTimeout <= 0 {
		opts.LongPollTimeout = DefaultLongPollTimeout
	}
	if opts.DeltaRatio <= 0 {
		opts.DeltaRatio = DefaultDeltaRatio
	}
	s := &Server{
		runCtx: runCtx,
		f:      f,
		opts:   opts,
		hubs:   make(map[string]*Hub),
	}
	for _, t := range f.Handles() {
		if s.single == nil {
			s.single = t
		}
		s.hubFor(t)
	}
	s.metrics = opts.Metrics
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.registerMetrics()
	return s
}

// registerMetrics declares the serving-side telemetry families: hub
// fan-out state and counters, labeled by tenant. Collectors walk the
// live hub set per scrape, so tenants adopted after construction are
// covered the moment their hub exists.
func (s *Server) registerMetrics() {
	eachHub := func(emit obs.Emit, field func(st HubStats) float64) {
		for _, t := range s.f.Handles() {
			h, ok := s.Hub(t.Name())
			if !ok {
				continue // adopted tenant not yet touched
			}
			emit(field(h.Stats()), t.Name())
		}
	}
	tenant := []string{"tenant"}
	gauges := []struct {
		name, help string
		field      func(st HubStats) float64
	}{
		{"tm_serving_waiters", "Long-poll waiters currently parked on the tenant's hub.",
			func(st HubStats) float64 { return float64(st.Waiters) }},
		{"tm_serving_subscribers", "SSE subscribers currently attached to the tenant's hub.",
			func(st HubStats) float64 { return float64(st.Subscribers) }},
		{"tm_serving_cached_versions", "Encoded snapshot versions retained for delta chains and conditional gets.",
			func(st HubStats) float64 { return float64(st.CachedVersions) }},
	}
	for _, g := range gauges {
		field := g.field
		s.metrics.GaugeFunc(g.name, g.help, tenant, func(emit obs.Emit) { eachHub(emit, field) })
	}
	counters := []struct {
		name, help string
		field      func(st HubStats) float64
	}{
		{"tm_served_waits_total", "Long-poll waits answered (fast path and parked).",
			func(st HubStats) float64 { return float64(st.ServedWaits) }},
		{"tm_snapshot_broadcasts_total", "Snapshot publications encoded and fanned out by the tenant's hub.",
			func(st HubStats) float64 { return float64(st.Broadcasts) }},
		{"tm_dropped_subscribers_total", "SSE subscribers dropped for falling behind the broadcast.",
			func(st HubStats) float64 { return float64(st.DroppedSubscribers) }},
		{"tm_shed_waiters_total", "Long-polls and subscriptions refused at the waiter cap (HTTP 429s).",
			func(st HubStats) float64 { return float64(st.ShedWaiters) }},
	}
	for _, c := range counters {
		field := c.field
		s.metrics.CounterFunc(c.name, c.help, tenant, func(emit obs.Emit) { eachHub(emit, field) })
	}
}

// hubFor returns the tenant's hub, creating and starting it on first
// touch — the path a tenant adopted onto a running node takes.
func (s *Server) hubFor(t fleet.Handle) *Hub {
	s.hubMu.Lock()
	defer s.hubMu.Unlock()
	if h, ok := s.hubs[t.Name()]; ok {
		return h
	}
	max := s.opts.MaxWaiters
	if mw := t.Spec().MaxWaiters; mw > 0 {
		max = mw
	}
	h := NewHub(t, HubConfig{
		MaxWaiters:       max,
		CacheVersions:    s.opts.CacheVersions,
		DeltaRatio:       s.opts.DeltaRatio,
		SubscriberBuffer: s.opts.SubscriberBuffer,
	})
	s.hubs[t.Name()] = h
	go h.Run(s.runCtx)
	return h
}

// Hub returns the named tenant's hub (tests and stats reach through it).
func (s *Server) Hub(name string) (*Hub, bool) {
	s.hubMu.Lock()
	defer s.hubMu.Unlock()
	h, ok := s.hubs[name]
	return h, ok
}

// Handler builds the HTTP mux over the route table in Routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/tenants", s.handleTenants)
	mux.Handle("/metrics/prom", s.metrics.Handler())
	// Tenant-scoped routes. Path patterns with wildcards need Go 1.22's
	// mux; this repo still builds on 1.21, so the prefix is split by hand.
	mux.HandleFunc("/t/", s.handleLegacyTenant)
	mux.HandleFunc("/v1/tenants", s.handleV1Tenants)
	mux.HandleFunc("/v1/t/", s.handleV1Tenant)
	if s.opts.Node != nil {
		mux.HandleFunc("/v1/cluster/", s.handleV1Cluster)
	}
	if s.opts.Single && s.single != nil {
		t := s.single
		mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
			s.serveSnapshot(w, r, s.hubFor(t))
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			writeTenantMetrics(w, t, false)
		})
	}
	return mux
}

// ---- legacy surface (byte-compatible with the pre-serve daemon) ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	statuses := s.f.Statuses()
	resp := map[string]any{"ok": s.f.Healthy(), "tenants": statuses}
	// SLO state rides the health document as extra keys. The HTTP status
	// stays 200 on degradation: cluster liveness probes gate on it, and a
	// tenant past its drift SLO is a page for an operator, not a reason
	// to fail the process over to a standby.
	var causes []string
	for _, st := range statuses {
		if st.Degraded {
			causes = append(causes, st.Name+": "+st.DegradedCause)
		}
	}
	if len(causes) > 0 {
		resp["degraded"] = true
		resp["causes"] = causes
	}
	if s.opts.Single && s.single != nil {
		version, _, ok := s.single.Position()
		resp["have_snapshot"] = ok
		resp["version"] = version
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.f.Statuses()})
}

func (s *Server) handleLegacyTenant(w http.ResponseWriter, r *http.Request) {
	name, endpoint, ok := strings.Cut(strings.TrimPrefix(r.URL.Path, "/t/"), "/")
	if !ok {
		// /t/eu without an endpoint: the tenant may well exist, so say
		// what is actually missing instead of "unknown tenant".
		writeLegacyError(w, http.StatusNotFound, fmt.Sprintf("missing endpoint: /t/%s/snapshot or /t/%s/metrics", name, name))
		return
	}
	t, have := s.f.Handle(name)
	if !have {
		writeLegacyError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q (see /tenants)", name))
		return
	}
	switch endpoint {
	case "snapshot":
		s.serveSnapshot(w, r, s.hubFor(t))
	case "metrics":
		writeTenantMetrics(w, t, false)
	default:
		writeLegacyError(w, http.StatusNotFound, fmt.Sprintf("unknown endpoint %q (snapshot or metrics)", endpoint))
	}
}

// serveSnapshot answers one legacy snapshot request through the hub,
// including the ?min_version long-poll. Bodies are the hub's cached
// bytes — identical to what json.Encoder wrote before the cache.
func (s *Server) serveSnapshot(w http.ResponseWriter, r *http.Request, h *Hub) {
	e, reply := s.fetchEntry(w, r, h)
	if !reply {
		return
	}
	if e == nil {
		writeLegacyError(w, http.StatusServiceUnavailable, "no snapshot yet")
		return
	}
	writeEntry(w, e, nil)
}

// fetchEntry resolves a snapshot request's entry: the ?min_version
// long-poll (with the cap, timeout, shutdown and client-disconnect
// handling) or the current entry. reply=false means the response is
// already fully handled — an error was written, or the client vanished
// and nothing must be (the recorder-based disconnect test pins that no
// header is touched on that path). A nil entry with reply=true means
// "no snapshot yet"; the caller picks its surface's error shape.
func (s *Server) fetchEntry(w http.ResponseWriter, r *http.Request, h *Hub) (*Entry, bool) {
	legacy := !strings.HasPrefix(r.URL.Path, "/v1/")
	mv := r.URL.Query().Get("min_version")
	if mv == "" {
		return h.Current(), true
	}
	min, err := strconv.ParseUint(mv, 10, 64)
	if err != nil {
		if legacy {
			writeLegacyError(w, http.StatusBadRequest, "bad min_version")
		} else {
			writeV1Error(w, http.StatusBadRequest, "bad_request", "bad min_version")
		}
		return nil, false
	}
	// Long poll, bounded so an abandoned stream cannot pin the waiter
	// forever, and released early on daemon shutdown.
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.LongPollTimeout)
	defer cancel()
	defer context.AfterFunc(s.runCtx, cancel)()
	e, err := h.WaitMin(ctx, min)
	if err == nil {
		return e, true
	}
	// Four distinct failure causes, four distinct answers: a hub at its
	// waiter cap sheds load with 429 + Retry-After, a vanished client
	// gets nothing (writing a body to a dead connection just burns a
	// broken-pipe error), a shutting-down daemon says so with 503, and
	// only a genuine bounded-wait expiry is the long-poll timeout 504.
	switch {
	case errors.Is(err, ErrTooManyWaiters):
		w.Header().Set("Retry-After", "1")
		if legacy {
			writeLegacyError(w, http.StatusTooManyRequests, "too many waiters; retry later")
		} else {
			writeV1Error(w, http.StatusTooManyRequests, "too_many_waiters", "tenant long-poll capacity reached; retry later")
		}
	case r.Context().Err() != nil:
		// Client disconnected (or its own deadline fired).
	case s.runCtx.Err() != nil:
		if legacy {
			writeLegacyError(w, http.StatusServiceUnavailable, "daemon shutting down")
		} else {
			writeV1Error(w, http.StatusServiceUnavailable, "shutting_down", "daemon shutting down")
		}
	default:
		if legacy {
			writeLegacyError(w, http.StatusGatewayTimeout, "timed out waiting for version")
		} else {
			writeV1Error(w, http.StatusGatewayTimeout, "timeout", "timed out waiting for version")
		}
	}
	return nil, false
}

// ---- v1 surface ----

// v1Tenant is one row of GET /v1/tenants: the fleet status plus the
// tenant's serving-side hub statistics.
type v1Tenant struct {
	fleet.Status
	Serving HubStats `json:"serving"`
}

func (s *Server) handleV1Tenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeV1Error(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	statuses := s.f.Statuses()
	out := make([]v1Tenant, 0, len(statuses))
	for _, st := range statuses {
		row := v1Tenant{Status: st}
		if h, ok := s.Hub(st.Name); ok {
			row.Serving = h.Stats()
		}
		out = append(out, row)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": out})
}

func (s *Server) handleV1Tenant(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeV1Error(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	name, endpoint, ok := strings.Cut(strings.TrimPrefix(r.URL.Path, "/v1/t/"), "/")
	if !ok {
		writeV1Error(w, http.StatusNotFound, "missing_endpoint",
			fmt.Sprintf("missing endpoint: /v1/t/%s/{snapshot|events|metrics}", name))
		return
	}
	t, have := s.f.Handle(name)
	if !have {
		writeV1Error(w, http.StatusNotFound, "unknown_tenant",
			fmt.Sprintf("unknown tenant %q (see /v1/tenants)", name))
		return
	}
	if s.opts.Node != nil {
		// In cluster mode every tenant-scoped response names its serving
		// node, whether reached directly or through the coordinator proxy.
		w.Header().Set("X-Tenant-Node", s.opts.Node.NodeName())
	}
	unknown := func() {
		writeV1Error(w, http.StatusNotFound, "unknown_endpoint",
			fmt.Sprintf("unknown endpoint %q (snapshot, events or metrics)", endpoint))
	}
	switch endpoint {
	case "snapshot":
		s.serveV1Snapshot(w, r, s.hubFor(t))
	case "events":
		s.serveV1Events(w, r, s.hubFor(t))
	case "metrics":
		writeTenantMetrics(w, t, true)
	case "checkpoint":
		// The handoff document, served only by cluster members: a
		// standby (or the coordinator, migrating) pulls it and restores
		// it warm on the new owner.
		if s.opts.Node == nil {
			unknown()
			return
		}
		cp, err := t.Checkpoint()
		if err != nil {
			writeV1Error(w, http.StatusBadGateway, "checkpoint_failed", err.Error())
			return
		}
		writeJSON(w, http.StatusOK, cp)
	default:
		unknown()
	}
}

// handleV1Cluster is the cluster-member admin surface (mounted only
// with Options.Node): POST /v1/cluster/adopt receives a checkpoint
// handoff — the coordinator (or an operator) tells this node to start
// hosting a tenant, optionally shipping the previous owner's
// checkpoint in the request body.
func (s *Server) handleV1Cluster(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, "/v1/cluster/")
	if op != "adopt" {
		writeV1Error(w, http.StatusNotFound, "unknown_endpoint",
			fmt.Sprintf("unknown cluster endpoint %q (adopt)", op))
		return
	}
	if r.Method != http.MethodPost {
		writeV1Error(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	var req struct {
		Tenant     string             `json:"tenant"`
		Checkpoint *stream.Checkpoint `json:"checkpoint,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeV1Error(w, http.StatusBadRequest, "bad_request", "bad adopt body: "+err.Error())
		return
	}
	if req.Tenant == "" {
		writeV1Error(w, http.StatusBadRequest, "bad_request", `adopt body needs {"tenant": "<name>"}`)
		return
	}
	w.Header().Set("X-Tenant-Node", s.opts.Node.NodeName())
	if err := s.opts.Node.Adopt(r.Context(), req.Tenant, req.Checkpoint); err != nil {
		code, errCode := http.StatusInternalServerError, "adopt_failed"
		switch {
		case errors.Is(err, fleet.ErrUnknownTenant):
			code, errCode = http.StatusNotFound, "unknown_tenant"
		case errors.Is(err, fleet.ErrAlreadyHosted):
			code, errCode = http.StatusConflict, "already_hosted"
		}
		writeV1Error(w, code, errCode, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"adopted": req.Tenant,
		"node":    s.opts.Node.NodeName(),
	})
}

// serveV1Snapshot is the negotiated read: conditional get via
// If-None-Match, delta via Accept (+ ?since or the conditional ETag as
// the base), gzip via Accept-Encoding, and the same ?min_version
// long-poll as the legacy route.
func (s *Server) serveV1Snapshot(w http.ResponseWriter, r *http.Request, h *Hub) {
	e, reply := s.fetchEntry(w, r, h)
	if !reply {
		return
	}
	if e == nil {
		writeV1Error(w, http.StatusServiceUnavailable, "no_snapshot", "no snapshot yet")
		return
	}
	inm := r.Header.Get("If-None-Match")
	if etagMatches(inm, e.ETag) {
		w.Header().Set("ETag", e.ETag)
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if strings.Contains(r.Header.Get("Accept"), DeltaMediaType) {
		if base, ok := deltaBase(r.URL.Query().Get("since"), inm); ok {
			if base == e.Version {
				w.Header().Set("ETag", e.ETag)
				w.Header().Set("Cache-Control", "no-cache")
				w.WriteHeader(http.StatusNotModified)
				return
			}
			// A delta chain longer than the ratio of the full body is
			// no win on the wire; DeltaChain then reports nil and the
			// response falls back to the full snapshot.
			maxBytes := int(s.opts.DeltaRatio * float64(len(e.JSON)))
			if chain := h.Cache().DeltaChain(base, maxBytes); chain != nil {
				writeDeltaDoc(w, e, base, chain)
				return
			}
		}
	}
	writeEntry(w, e, r)
}

// deltaBase resolves the client's base version for a delta response:
// the explicit ?since=N, else the If-None-Match ETag it presented.
func deltaBase(since, inm string) (uint64, bool) {
	if since != "" {
		v, err := strconv.ParseUint(since, 10, 64)
		return v, err == nil
	}
	for _, part := range strings.Split(inm, ",") {
		tag := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "W/"))
		tag = strings.Trim(tag, `"`)
		if rest, ok := strings.CutPrefix(tag, "v"); ok {
			if v, err := strconv.ParseUint(rest, 10, 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// etagMatches implements If-None-Match against one strong ETag.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		tag := strings.TrimSpace(part)
		if tag == "*" || tag == etag || strings.TrimPrefix(tag, "W/") == etag {
			return true
		}
	}
	return false
}

// DeltaDoc is the delta response body: the encoded patches leading from
// the client's version From to the served version To, oldest first.
// Apply each step in order to reproduce snapshot To byte-exactly.
type DeltaDoc struct {
	Format int               `json:"format"`
	From   uint64            `json:"from"`
	To     uint64            `json:"to"`
	Steps  []json.RawMessage `json:"steps"`
}

func writeDeltaDoc(w http.ResponseWriter, e *Entry, from uint64, chain [][]byte) {
	doc := DeltaDoc{Format: DeltaFormat, From: from, To: e.Version, Steps: make([]json.RawMessage, len(chain))}
	for i, step := range chain {
		doc.Steps[i] = json.RawMessage(step)
	}
	w.Header().Set("Content-Type", DeltaMediaType)
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("ETag", e.ETag)
	w.Header().Set("X-Snapshot-Version", strconv.FormatUint(e.Version, 10))
	w.Header().Set("X-Delta-From", strconv.FormatUint(from, 10))
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	_ = enc.Encode(doc)
}

// sseAnnounce is the data payload of an SSE "version" event.
type sseAnnounce struct {
	Version  uint64    `json:"version"`
	ETag     string    `json:"etag"`
	Interval int       `json:"interval"`
	Time     time.Time `json:"time"`
	// DeltaFrom is present when a "delta" event for this version
	// follows immediately after the announcement.
	DeltaFrom *uint64 `json:"delta_from,omitempty"`
}

// serveV1Events streams version announcements (and deltas, when the hub
// cached one) as Server-Sent Events until the client leaves, the daemon
// shuts down, or the subscriber falls too far behind and is dropped.
func (s *Server) serveV1Events(w http.ResponseWriter, r *http.Request, h *Hub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeV1Error(w, http.StatusInternalServerError, "streaming_unsupported", "response writer cannot stream")
		return
	}
	sub, err := h.Subscribe()
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeV1Error(w, http.StatusTooManyRequests, "too_many_waiters", "tenant subscriber capacity reached; retry later")
		return
	}
	defer sub.Cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// The current version opens the stream (subscribing first, so a
	// publication between the two is delivered, not lost); dedup below
	// drops the duplicate if it races in.
	var last uint64
	if e := h.Current(); e != nil {
		writeSSEEntry(w, e)
		last = e.Version
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.runCtx.Done():
			return
		case e, ok := <-sub.C:
			if !ok {
				// Dropped by the hub for falling behind; the client
				// reconnects and starts from the then-current version.
				return
			}
			if e.Version <= last {
				continue
			}
			writeSSEEntry(w, e)
			last = e.Version
			fl.Flush()
		}
	}
}

func writeSSEEntry(w http.ResponseWriter, e *Entry) {
	ann := sseAnnounce{Version: e.Version, ETag: e.ETag, Interval: e.Interval, Time: e.Time}
	if e.Delta != nil {
		from := e.DeltaFrom
		ann.DeltaFrom = &from
	}
	data, err := json.Marshal(ann)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: version\nid: %d\ndata: %s\n\n", e.Version, data)
	if e.Delta != nil {
		fmt.Fprintf(w, "event: delta\nid: %d\ndata: %s\n\n", e.Version, e.Delta)
	}
}

// ---- response helpers ----

// writeEntry serves a cached snapshot entry: the immutable encoded
// bytes, the serving headers the whole surface agrees on, and — only
// for v1 requests (r non-nil with a /v1/ path) — gzip when the client
// accepts it. Legacy responses stay byte-identical to the seed daemon.
func writeEntry(w http.ResponseWriter, e *Entry, r *http.Request) {
	hdr := w.Header()
	hdr.Set("Content-Type", "application/json")
	hdr.Set("Cache-Control", "no-cache")
	hdr.Set("X-Snapshot-Version", strconv.FormatUint(e.Version, 10))
	body := e.JSON
	if r != nil && strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		if gz := e.Gzip(); gz != nil {
			hdr.Set("Content-Encoding", "gzip")
			hdr.Set("Vary", "Accept-Encoding")
			body = gz
		}
	}
	if r != nil {
		hdr.Set("ETag", e.ETag)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// writeTenantMetrics serves one tenant's estimation-error history with
// the same serving headers the snapshot routes carry: the newest
// snapshot version the points lead up to (X-Snapshot-Version), plus —
// on the v1 surface — its ETag, so a dashboard can correlate a metrics
// read with the snapshot it belongs to.
func writeTenantMetrics(w http.ResponseWriter, t fleet.Handle, v1 bool) {
	if version, _, ok := t.Position(); ok {
		w.Header().Set("X-Snapshot-Version", strconv.FormatUint(version, 10))
		if v1 {
			w.Header().Set("ETag", ETag(version))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"points": t.Metrics()})
}

// writeJSON answers a legacy-shaped JSON response; the body bytes are
// exactly what the seed daemon's json.Encoder produced.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeLegacyError answers with the legacy {"error":"..."} envelope.
func writeLegacyError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}

// v1Error is the uniform v1 error envelope: {"error":{"code","message"}}.
type v1Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeV1Error answers with the v1 envelope.
func writeV1Error(w http.ResponseWriter, code int, errCode, msg string) {
	writeJSON(w, code, map[string]any{"error": v1Error{Code: errCode, Message: msg}})
}
