package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/stream"
)

// Source is the engine-shaped publication feed a Hub multiplexes:
// *stream.Engine satisfies it, and tests and benchmarks substitute
// synthetic publishers.
type Source interface {
	// Latest returns the newest snapshot, ok=false before the first.
	Latest() (stream.Snapshot, bool)
	// WaitVersion blocks until a snapshot with Version >= min exists or
	// ctx is done.
	WaitVersion(ctx context.Context, min uint64) (stream.Snapshot, error)
}

// ErrTooManyWaiters is returned by WaitMin and Subscribe when the hub's
// waiter cap is reached — the HTTP layer maps it to 429 + Retry-After
// instead of letting waiters grow without bound.
var ErrTooManyWaiters = errors.New("serve: too many waiters")

// DefaultMaxWaiters bounds concurrent long-poll waiters plus SSE
// subscribers per hub when the host does not say otherwise.
const DefaultMaxWaiters = 65536

// DefaultSubscriberBuffer is each subscription's entry buffer; a
// subscriber that falls this many publications behind is dropped
// (closed) rather than allowed to stall the broadcast.
const DefaultSubscriberBuffer = 16

// HubConfig tunes a Hub. The zero value selects every default.
type HubConfig struct {
	// MaxWaiters caps concurrent long-poll waiters + SSE subscribers;
	// <= 0 selects DefaultMaxWaiters.
	MaxWaiters int
	// CacheVersions is how many encoded versions to retain for delta
	// chains and conditional gets; <= 0 selects DefaultCacheVersions.
	CacheVersions int
	// DeltaRatio is the encoded-delta / full-snapshot size ratio past
	// which a publication is cached without a delta; <= 0 selects
	// DefaultDeltaRatio.
	DeltaRatio float64
	// SubscriberBuffer is each subscription's channel depth; <= 0
	// selects DefaultSubscriberBuffer.
	SubscriberBuffer int
}

// waiter is one parked WaitMin call. The channel is buffered (depth 1)
// and delivered to at most once per park, so waiters recycle through a
// pool and a steady-state served request allocates ~nothing.
type waiter struct {
	min uint64
	ch  chan *Entry
}

var waiterPool = sync.Pool{
	New: func() any { return &waiter{ch: make(chan *Entry, 1)} },
}

// Subscription is one SSE (or test) subscriber: receive entries from C
// until it is closed — by Cancel, or by the hub when the subscriber
// fell SubscriberBuffer publications behind.
type Subscription struct {
	C   <-chan *Entry
	ch  chan *Entry
	hub *Hub
}

// Cancel detaches the subscription. Safe to call once, from the
// receiving goroutine, even if the hub dropped the subscription first.
func (s *Subscription) Cancel() {
	h := s.hub
	h.mu.Lock()
	if _, in := h.subs[s]; in {
		delete(h.subs, s)
		close(s.ch)
	}
	h.mu.Unlock()
}

// Hub is the per-tenant broadcast fan-out: one Run loop observes every
// engine publication, encodes it exactly once into the shared Cache,
// and wakes every satisfied waiter and every subscriber — replacing the
// pre-hub design of one goroutine plus one deep snapshot copy per
// long-polling client.
type Hub struct {
	src   Source
	cfg   HubConfig
	cache *Cache

	mu      sync.Mutex
	prev    *stream.Snapshot // newest observed snapshot, the delta base
	waiters map[*waiter]struct{}
	subs    map[*Subscription]struct{}

	servedWaits atomic.Uint64 // WaitMin calls answered (fast path + parked)
	broadcasts  atomic.Uint64 // publications fanned out
	droppedSubs atomic.Uint64 // subscribers closed for falling behind
	shedWaiters atomic.Uint64 // WaitMin/Subscribe refusals at the waiter cap
}

// NewHub creates a hub over a source. Drive it with Run (usually one
// goroutine per tenant) and read it with Current / WaitMin / Subscribe.
func NewHub(src Source, cfg HubConfig) *Hub {
	if cfg.MaxWaiters <= 0 {
		cfg.MaxWaiters = DefaultMaxWaiters
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = DefaultSubscriberBuffer
	}
	return &Hub{
		src:     src,
		cfg:     cfg,
		cache:   NewCache(cfg.CacheVersions),
		waiters: make(map[*waiter]struct{}),
		subs:    make(map[*Subscription]struct{}),
	}
}

// Cache exposes the hub's encoded-version cache (conditional gets and
// delta chains read it directly).
func (h *Hub) Cache() *Cache { return h.cache }

// Run observes source publications until ctx is done. Call it once;
// readers work before, during and after (a hub whose Run has returned
// keeps serving its last observed version).
func (h *Hub) Run(ctx context.Context) {
	for {
		h.mu.Lock()
		var next uint64
		if h.prev != nil {
			next = h.prev.Version + 1
		}
		h.mu.Unlock()
		snap, err := h.src.WaitVersion(ctx, next)
		if err != nil {
			return // ctx done
		}
		h.observe(snap)
	}
}

// observe encodes one snapshot, installs it, and fans it out. The
// encode happens under the hub lock: it runs once per publication (not
// per client), and holding the lock makes version monotonicity trivial
// against the lazy prime in Current. Readers on the fast path touch
// only the cache's own lock.
func (h *Hub) observe(snap stream.Snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.installLocked(snap)
}

func (h *Hub) installLocked(snap stream.Snapshot) *Entry {
	if h.prev != nil && snap.Version <= h.prev.Version {
		e, _ := h.cache.Get(snap.Version)
		return e // already observed (Run loop vs lazy prime race)
	}
	e, err := NewEntry(snap, h.prev, h.cfg.DeltaRatio)
	if err != nil {
		return nil // unmarshalable snapshot: nothing to serve
	}
	h.prev = &snap
	h.cache.Add(e)
	h.broadcasts.Add(1)
	for w := range h.waiters {
		if e.Version >= w.min {
			w.ch <- e // buffered 1, empty by construction: never blocks
			delete(h.waiters, w)
			h.servedWaits.Add(1)
		}
	}
	for s := range h.subs {
		select {
		case s.ch <- e:
		default:
			delete(h.subs, s)
			close(s.ch)
			h.droppedSubs.Add(1)
		}
	}
	return e
}

// Current returns the newest encoded entry, priming the cache from the
// source's latest snapshot when the Run loop has not observed one yet
// (a restored engine serves its checkpointed snapshot on the very first
// request, before any publication). Nil means no snapshot exists yet.
func (h *Hub) Current() *Entry {
	if e := h.cache.Latest(); e != nil {
		return e
	}
	snap, ok := h.src.Latest()
	if !ok {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if e := h.cache.Latest(); e != nil {
		return e // another primer won the race
	}
	return h.installLocked(snap)
}

// WaitMin returns the newest entry with Version >= min, blocking until
// one is published or ctx is done. It is the multiplexed long poll:
// the fast path is two atomic loads and no allocation; a parked wait
// costs one pooled waiter registration, not a goroutine or a snapshot
// copy. Returns ErrTooManyWaiters when the hub is at its waiter cap.
func (h *Hub) WaitMin(ctx context.Context, min uint64) (*Entry, error) {
	if e := h.Current(); e != nil && e.Version >= min {
		h.servedWaits.Add(1)
		return e, nil
	}
	h.mu.Lock()
	// Recheck under the lock: a publication between the fast path and
	// here would otherwise be missed until the next one.
	if e := h.cache.Latest(); e != nil && e.Version >= min {
		h.mu.Unlock()
		h.servedWaits.Add(1)
		return e, nil
	}
	if len(h.waiters)+len(h.subs) >= h.cfg.MaxWaiters {
		h.mu.Unlock()
		h.shedWaiters.Add(1)
		return nil, ErrTooManyWaiters
	}
	w := waiterPool.Get().(*waiter)
	w.min = min
	h.waiters[w] = struct{}{}
	h.mu.Unlock()

	select {
	case e := <-w.ch:
		waiterPool.Put(w)
		return e, nil
	case <-ctx.Done():
		h.mu.Lock()
		delete(h.waiters, w)
		h.mu.Unlock()
		// A delivery may have raced the cancellation; prefer it, and
		// either way drain the channel before pooling the waiter.
		select {
		case e := <-w.ch:
			waiterPool.Put(w)
			return e, nil
		default:
		}
		waiterPool.Put(w)
		return nil, ctx.Err()
	}
}

// Subscribe attaches a subscriber receiving every publication from now
// on. Counts against the waiter cap; cancel it when done.
func (h *Hub) Subscribe() (*Subscription, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.waiters)+len(h.subs) >= h.cfg.MaxWaiters {
		h.shedWaiters.Add(1)
		return nil, ErrTooManyWaiters
	}
	s := &Subscription{ch: make(chan *Entry, h.cfg.SubscriberBuffer), hub: h}
	s.C = s.ch
	h.subs[s] = struct{}{}
	return s, nil
}

// HubStats is the hub's serving telemetry, exposed per tenant by the
// v1 API.
type HubStats struct {
	Version            uint64 `json:"version"`
	ETag               string `json:"etag,omitempty"`
	Waiters            int    `json:"waiters"`
	Subscribers        int    `json:"subscribers"`
	ServedWaits        uint64 `json:"served_waits"`
	Broadcasts         uint64 `json:"broadcasts"`
	DroppedSubscribers uint64 `json:"dropped_subscribers"`
	ShedWaiters        uint64 `json:"shed_waiters"`
	CachedVersions     int    `json:"cached_versions"`
	MaxWaiters         int    `json:"max_waiters"`
}

// Stats reports the hub's current serving counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	waiters, subs := len(h.waiters), len(h.subs)
	var version uint64
	var etag string
	if h.prev != nil {
		version = h.prev.Version
		etag = ETag(version)
	}
	h.mu.Unlock()
	return HubStats{
		Version:            version,
		ETag:               etag,
		Waiters:            waiters,
		Subscribers:        subs,
		ServedWaits:        h.servedWaits.Load(),
		Broadcasts:         h.broadcasts.Load(),
		DroppedSubscribers: h.droppedSubs.Load(),
		ShedWaiters:        h.shedWaiters.Load(),
		CachedVersions:     h.cache.Len(),
		MaxWaiters:         h.cfg.MaxWaiters,
	}
}
