package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fleet"
)

// stubNode fakes a cluster member's HTTP surface with canned answers —
// enough for the front door's routing, aggregation and migration paths
// without booting engines.
func stubNode(t *testing.T, name string, adopts *int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"tenants": []map[string]any{{"name": "eu", "state": "serving"}},
		})
	})
	mux.HandleFunc("/v1/t/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Tenant-Node", name)
		if strings.HasSuffix(r.URL.Path, "/checkpoint") {
			writeJSON(w, http.StatusOK, map[string]any{"format": 2, "num_pairs": 0, "num_links": 0, "method": "entropy", "ring": []any{}, "next": 0, "consumed": 0, "skipped": 0, "since_resolve": 0, "cur_every": 0, "drift_peak": 0})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"version": 7, "served_by": name})
	})
	mux.HandleFunc("/v1/cluster/adopt", func(w http.ResponseWriter, r *http.Request) {
		*adopts++
		writeJSON(w, http.StatusOK, map[string]any{"adopted": "eu", "node": name})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func stubConfig(t *testing.T, routing string, n1, n2 *httptest.Server) cluster.Config {
	t.Helper()
	cfg := cluster.Config{
		Format:  cluster.ConfigFormat,
		Tenants: []fleet.TenantSpec{{Name: "eu"}},
		Nodes: []cluster.NodeSpec{
			{Name: "n1", Addr: strings.TrimPrefix(n1.URL, "http://")},
			{Name: "n2", Addr: strings.TrimPrefix(n2.URL, "http://")},
		},
		Placement:     map[string]string{"eu": "n1"},
		Routing:       routing,
		ProbeFailures: 1,
	}
	return cfg
}

// TestCoordinatorProxyAndAggregate: the front door proxies tenant
// reads to the owner (annotated with X-Tenant-Node), merges the
// listing with node reports, answers the admin surface, and degrades
// to 503/404 when routing cannot resolve.
func TestCoordinatorProxyAndAggregate(t *testing.T) {
	ctx := context.Background()
	adopts1, adopts2 := 0, 0
	n1 := stubNode(t, "n1", &adopts1)
	n2 := stubNode(t, "n2", &adopts2)
	c := cluster.NewCoordinator(stubConfig(t, "", n1, n2), nil, t.Logf)
	c.Registry().Sweep(ctx)
	handler := NewCoordinator(c, nil).Handler()

	// Proxied read: the owner's body and header pass through untouched.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/t/eu/snapshot?min_version=2", nil))
	if rec.Code != http.StatusOK || rec.Header().Get("X-Tenant-Node") != "n1" {
		t.Fatalf("proxied: %d via %q", rec.Code, rec.Header().Get("X-Tenant-Node"))
	}
	if !strings.Contains(rec.Body.String(), `"served_by":"n1"`) {
		t.Fatalf("proxied body: %s", rec.Body.String())
	}

	// Unknown tenant keeps the envelope.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/t/ghost/snapshot", nil))
	if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), "unknown_tenant") {
		t.Fatalf("unknown tenant: %d %s", rec.Code, rec.Body.String())
	}

	// Aggregated listing: node-annotated rows plus per-node reports
	// carrying the proxied counter.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tenants", nil))
	var listing struct {
		Coordinator bool                 `json:"coordinator"`
		Nodes       []cluster.NodeReport `json:"nodes"`
		Tenants     []struct {
			Name string `json:"name"`
			Node string `json:"node"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	// Both stubs claim eu; the point is the annotation, not dedup.
	if !listing.Coordinator || len(listing.Tenants) != 2 || len(listing.Nodes) != 2 {
		t.Fatalf("listing: %s", rec.Body.String())
	}
	var proxied uint64
	for _, n := range listing.Nodes {
		proxied += n.Proxied
	}
	if proxied != 1 {
		t.Fatalf("proxied counter %d, want 1", proxied)
	}
	if rec := (func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/tenants", nil))
		return rec
	})(); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST listing: %d", rec.Code)
	}

	// Healthz names the coordinator and its nodes.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"coordinator":true`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	// Migrate pulls the owner's checkpoint and ships it to the target.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/cluster/migrate?tenant=eu&to=n2", nil))
	if rec.Code != http.StatusOK || adopts2 != 1 {
		t.Fatalf("migrate: %d (target adopts %d) %s", rec.Code, adopts2, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/cluster/migrate?tenant=eu", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("migrate without target: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/cluster/migrate?tenant=eu&to=n1", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET migrate: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/cluster/evict?tenant=eu", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown admin op: %d", rec.Code)
	}

	// An owner that dies between probe and request is a 502 from the
	// proxy's error handler; once probes notice, routing answers 503.
	n2.Close()
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/t/eu/snapshot", nil))
	if rec.Code != http.StatusBadGateway || !strings.Contains(rec.Body.String(), "node_unreachable") {
		t.Fatalf("proxy to dead node: %d %s", rec.Code, rec.Body.String())
	}
	c.Registry().Sweep(ctx)
	// Failover has nowhere to go (n1 closed next) — here n2 is the dead
	// one, so eu fails over to... n2 was the owner after migration; the
	// reconcile promotes n1 and reads flow again.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/t/eu/snapshot", nil))
	if rec.Code != http.StatusOK || rec.Header().Get("X-Tenant-Node") != "n1" {
		t.Fatalf("read after failover back: %d via %q", rec.Code, rec.Header().Get("X-Tenant-Node"))
	}
}

// TestCoordinatorRedirectMode: routing "redirect" answers 307 with the
// owner's URL instead of proxying, and counts it.
func TestCoordinatorRedirectMode(t *testing.T) {
	adopts := 0
	n1 := stubNode(t, "n1", &adopts)
	n2 := stubNode(t, "n2", &adopts)
	c := cluster.NewCoordinator(stubConfig(t, "redirect", n1, n2), nil, t.Logf)
	c.Registry().Sweep(context.Background())
	handler := NewCoordinator(c, nil).Handler()

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/t/eu/events?min_version=3", nil))
	if rec.Code != http.StatusTemporaryRedirect {
		t.Fatalf("redirect: %d", rec.Code)
	}
	want := n1.URL + "/v1/t/eu/events?min_version=3"
	if loc := rec.Header().Get("Location"); loc != want {
		t.Fatalf("Location %q, want %q", loc, want)
	}
	if rec.Header().Get("X-Tenant-Node") != "n1" {
		t.Fatalf("X-Tenant-Node %q", rec.Header().Get("X-Tenant-Node"))
	}
	var redirected uint64
	for _, n := range c.Report() {
		redirected += n.Redirected
	}
	if redirected != 1 {
		t.Fatalf("redirected counter %d, want 1", redirected)
	}
}
