package serve

// Route is one row of the HTTP surface: the method and path pattern a
// Server answers, what it does, and which surface it belongs to. The
// table is the single source of truth the API documentation
// (docs/API.md) is drift-tested against, and the server tests assert
// every row is actually routable.
type Route struct {
	Method  string
	Pattern string // {name} marks the tenant path segment
	Summary string
	// Legacy marks the pre-v1 routes kept byte-compatible with the
	// seed-era daemon; false means the versioned /v1 surface.
	Legacy bool
	// SingleOnly routes exist only in single-tenant mode, where they
	// alias the one tenant.
	SingleOnly bool
	// ClusterOnly routes exist only on cluster member nodes (Options.
	// Node set): the checkpoint-handoff admin surface.
	ClusterOnly bool
}

// Routes returns the full route table, v1 first.
func Routes() []Route {
	return []Route{
		{Method: "GET", Pattern: "/v1/tenants",
			Summary: "every tenant's status plus its serving statistics (waiters, subscribers, cached versions)"},
		{Method: "GET", Pattern: "/v1/t/{name}/checkpoint", ClusterOnly: true,
			Summary: "tenant's current engine checkpoint — the migration handoff document a standby syncs and a new owner restores warm"},
		{Method: "POST", Pattern: "/v1/cluster/adopt", ClusterOnly: true,
			Summary: "start hosting a tenant here: body {\"tenant\",\"checkpoint\"?}; a missing checkpoint restores the node's synced standby copy, else adopts cold"},
		{Method: "GET", Pattern: "/v1/t/{name}/snapshot",
			Summary: "latest snapshot: ETag/If-None-Match conditional get, ?min_version=N long-poll, delta via Accept: application/vnd.tmserve.delta+json with ?since=V, gzip via Accept-Encoding"},
		{Method: "GET", Pattern: "/v1/t/{name}/events",
			Summary: "Server-Sent Events stream of version announcements and deltas"},
		{Method: "GET", Pattern: "/v1/t/{name}/metrics",
			Summary: "tenant's estimation-error history"},
		{Method: "GET", Pattern: "/metrics/prom",
			Summary: "Prometheus text-format telemetry: estimation, SLO and serving families for every hosted tenant"},
		{Method: "GET", Pattern: "/healthz", Legacy: true,
			Summary: "liveness plus per-tenant state and SLO degradation causes"},
		{Method: "GET", Pattern: "/tenants", Legacy: true,
			Summary: "every tenant's status"},
		{Method: "GET", Pattern: "/t/{name}/snapshot", Legacy: true,
			Summary: "tenant's latest versioned snapshot; ?min_version=N long-polls"},
		{Method: "GET", Pattern: "/t/{name}/metrics", Legacy: true,
			Summary: "tenant's estimation-error history"},
		{Method: "GET", Pattern: "/snapshot", Legacy: true, SingleOnly: true,
			Summary: "single-tenant alias of /t/default/snapshot"},
		{Method: "GET", Pattern: "/metrics", Legacy: true, SingleOnly: true,
			Summary: "single-tenant alias of /t/default/metrics"},
	}
}

// CoordinatorRoutes returns the route table of coordinator mode — the
// cluster's front door. Tenant-scoped reads are not answered locally:
// they are proxied (or 307-redirected, per the cluster config's
// routing) to the owning node, with the error envelope and
// ETag/delta/SSE semantics passing through unchanged and the
// X-Tenant-Node header naming the owner.
func CoordinatorRoutes() []Route {
	return []Route{
		{Method: "GET", Pattern: "/v1/tenants",
			Summary: "fleet-wide tenant listing aggregated across member nodes, each row annotated with its node, plus per-node health and routing counters"},
		{Method: "GET", Pattern: "/v1/t/{name}/snapshot",
			Summary: "proxied or 307-redirected to the owning node; conditional gets, long-polls and delta negotiation pass through unchanged"},
		{Method: "GET", Pattern: "/v1/t/{name}/events",
			Summary: "SSE stream, proxied unbuffered (or redirected) to the owning node"},
		{Method: "GET", Pattern: "/v1/t/{name}/metrics",
			Summary: "estimation-error history from the owning node"},
		{Method: "GET", Pattern: "/v1/t/{name}/checkpoint",
			Summary: "the owning node's handoff checkpoint"},
		{Method: "GET", Pattern: "/metrics/prom",
			Summary: "Prometheus text-format telemetry: per-node health, probe-failure and proxy/redirect routing counters"},
		{Method: "POST", Pattern: "/v1/cluster/migrate",
			Summary: "move a tenant via checkpoint handoff: ?tenant=X&to=node pulls the owner's checkpoint, ships it to the target's adopt endpoint and repoints routing"},
		{Method: "GET", Pattern: "/healthz", Legacy: true,
			Summary: "coordinator liveness plus per-node probe state"},
	}
}
