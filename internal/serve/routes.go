package serve

// Route is one row of the HTTP surface: the method and path pattern a
// Server answers, what it does, and which surface it belongs to. The
// table is the single source of truth the API documentation
// (docs/API.md) is drift-tested against, and the server tests assert
// every row is actually routable.
type Route struct {
	Method  string
	Pattern string // {name} marks the tenant path segment
	Summary string
	// Legacy marks the pre-v1 routes kept byte-compatible with the
	// seed-era daemon; false means the versioned /v1 surface.
	Legacy bool
	// SingleOnly routes exist only in single-tenant mode, where they
	// alias the one tenant.
	SingleOnly bool
}

// Routes returns the full route table, v1 first.
func Routes() []Route {
	return []Route{
		{Method: "GET", Pattern: "/v1/tenants",
			Summary: "every tenant's status plus its serving statistics (waiters, subscribers, cached versions)"},
		{Method: "GET", Pattern: "/v1/t/{name}/snapshot",
			Summary: "latest snapshot: ETag/If-None-Match conditional get, ?min_version=N long-poll, delta via Accept: application/vnd.tmserve.delta+json with ?since=V, gzip via Accept-Encoding"},
		{Method: "GET", Pattern: "/v1/t/{name}/events",
			Summary: "Server-Sent Events stream of version announcements and deltas"},
		{Method: "GET", Pattern: "/v1/t/{name}/metrics",
			Summary: "tenant's estimation-error history"},
		{Method: "GET", Pattern: "/healthz", Legacy: true,
			Summary: "liveness plus per-tenant state"},
		{Method: "GET", Pattern: "/tenants", Legacy: true,
			Summary: "every tenant's status"},
		{Method: "GET", Pattern: "/t/{name}/snapshot", Legacy: true,
			Summary: "tenant's latest versioned snapshot; ?min_version=N long-polls"},
		{Method: "GET", Pattern: "/t/{name}/metrics", Legacy: true,
			Summary: "tenant's estimation-error history"},
		{Method: "GET", Pattern: "/snapshot", Legacy: true, SingleOnly: true,
			Summary: "single-tenant alias of /t/default/snapshot"},
		{Method: "GET", Pattern: "/metrics", Legacy: true, SingleOnly: true,
			Summary: "single-tenant alias of /t/default/metrics"},
	}
}
