package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/stream"
)

// fakeNode is a NodeAdmin double: it records adoptions and answers with
// a scripted error, so the handler's error mapping is tested without a
// cluster.
type fakeNode struct {
	name    string
	err     error
	adopted []string
	gotCP   *stream.Checkpoint
}

func (n *fakeNode) NodeName() string { return n.name }

func (n *fakeNode) Adopt(_ context.Context, tenant string, cp *stream.Checkpoint) error {
	if n.err != nil {
		return n.err
	}
	n.adopted = append(n.adopted, tenant)
	n.gotCP = cp
	return nil
}

func do(t *testing.T, handler http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	return rec
}

// v1Code parses the v1 error envelope and returns its code.
func v1Code(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("envelope does not parse: %v (%s)", err, rec.Body.String())
	}
	return e.Error.Code
}

// TestServerClusterEndpoints: with Options.Node set, the ClusterOnly
// routes serve, every tenant-scoped v1 response names the node, and the
// adopt endpoint maps the lifecycle sentinels onto the error envelope.
func TestServerClusterEndpoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	node := &fakeNode{name: "n1"}
	s := New(ctx, testFleet(t), Options{Node: node})
	handler := s.Handler()

	// The checkpoint route serves the handoff document with the node header.
	rec := do(t, handler, "GET", "/v1/t/default/checkpoint", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Tenant-Node") != "n1" {
		t.Fatalf("checkpoint X-Tenant-Node %q", rec.Header().Get("X-Tenant-Node"))
	}
	var cp stream.Checkpoint
	if err := json.Unmarshal(rec.Body.Bytes(), &cp); err != nil {
		t.Fatalf("checkpoint body does not parse as a checkpoint: %v", err)
	}
	if cp.Format != stream.CheckpointFormat {
		t.Fatalf("checkpoint format %d, want %d", cp.Format, stream.CheckpointFormat)
	}

	// The snapshot route names the node too (so the coordinator proxy's
	// pass-through carries it without rewriting).
	rec = do(t, handler, "GET", "/v1/t/default/snapshot", "")
	if rec.Header().Get("X-Tenant-Node") != "n1" {
		t.Fatalf("snapshot X-Tenant-Node %q (status %d)", rec.Header().Get("X-Tenant-Node"), rec.Code)
	}

	// Adopt: happy path, with a shipped checkpoint.
	body, _ := json.Marshal(map[string]any{"tenant": "eu", "checkpoint": cp})
	rec = do(t, handler, "POST", "/v1/cluster/adopt", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("adopt: %d %s", rec.Code, rec.Body.String())
	}
	var ok struct {
		Adopted string `json:"adopted"`
		Node    string `json:"node"`
	}
	if json.Unmarshal(rec.Body.Bytes(), &ok) != nil || ok.Adopted != "eu" || ok.Node != "n1" {
		t.Fatalf("adopt response: %s", rec.Body.String())
	}
	if len(node.adopted) != 1 || node.adopted[0] != "eu" || node.gotCP == nil {
		t.Fatalf("node saw adoptions %v, checkpoint %v", node.adopted, node.gotCP != nil)
	}

	// Sentinel mapping: unknown tenant is 404, a promotion retry is 409.
	for _, tc := range []struct {
		err    error
		status int
		code   string
	}{
		{fleet.ErrUnknownTenant, http.StatusNotFound, "unknown_tenant"},
		{fleet.ErrAlreadyHosted, http.StatusConflict, "already_hosted"},
	} {
		node.err = tc.err
		rec = do(t, handler, "POST", "/v1/cluster/adopt", `{"tenant":"eu"}`)
		if rec.Code != tc.status || v1Code(t, rec) != tc.code {
			t.Fatalf("adopt with %v: %d %s", tc.err, rec.Code, rec.Body.String())
		}
	}
	node.err = nil

	// Malformed requests.
	if rec = do(t, handler, "POST", "/v1/cluster/adopt", "{"); rec.Code != http.StatusBadRequest {
		t.Fatalf("truncated body: %d", rec.Code)
	}
	if rec = do(t, handler, "POST", "/v1/cluster/adopt", "{}"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing tenant: %d", rec.Code)
	}
	if rec = do(t, handler, "GET", "/v1/cluster/adopt", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET adopt: %d", rec.Code)
	}
	if rec = do(t, handler, "POST", "/v1/cluster/evict", "{}"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown cluster op: %d", rec.Code)
	}

	// Every ClusterOnly row in the route table resolves on this server —
	// the complement of TestRoutesAllServed's skip.
	for _, rt := range Routes() {
		if !rt.ClusterOnly {
			continue
		}
		path := strings.ReplaceAll(rt.Pattern, "{name}", "default")
		rec := do(t, handler, rt.Method, path, `{"tenant":"eu"}`)
		if rec.Code == http.StatusNotFound {
			t.Errorf("cluster route %s %s served 404", rt.Method, rt.Pattern)
		}
	}
}

// TestServerClusterRoutesOffByDefault: without Options.Node the cluster
// admin surface does not exist — the checkpoint endpoint is an unknown
// endpoint and /v1/cluster/ is unrouted, so a plain daemon exposes no
// handoff surface.
func TestServerClusterRoutesOffByDefault(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, testFleet(t), Options{})
	handler := s.Handler()

	rec := do(t, handler, "GET", "/v1/t/default/checkpoint", "")
	if rec.Code != http.StatusNotFound || v1Code(t, rec) != "unknown_endpoint" {
		t.Fatalf("checkpoint without Node: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Tenant-Node") != "" {
		t.Fatal("X-Tenant-Node set outside cluster mode")
	}
	rec = do(t, handler, "POST", "/v1/cluster/adopt", `{"tenant":"eu"}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("adopt without Node: %d", rec.Code)
	}
	rec = do(t, handler, "GET", "/v1/t/default/snapshot", "")
	if rec.Header().Get("X-Tenant-Node") != "" {
		t.Fatal("snapshot carries X-Tenant-Node outside cluster mode")
	}
}
