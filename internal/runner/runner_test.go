package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewPoolDefaults(t *testing.T) {
	if w := NewPool(0).Workers(); w < 1 {
		t.Fatalf("NewPool(0).Workers() = %d", w)
	}
	if w := NewPool(-3).Workers(); w < 1 {
		t.Fatalf("NewPool(-3).Workers() = %d", w)
	}
	if w := NewPool(5).Workers(); w != 5 {
		t.Fatalf("NewPool(5).Workers() = %d, want 5", w)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		const n = 100
		var visits [n]int32
		if err := p.ForEach(context.Background(), n, func(i int) error {
			atomic.AddInt32(&visits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForEachFirstErrorInIndexOrder(t *testing.T) {
	p := NewPool(4)
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Indices 3 and 7 both fail; the reported error must be index 3's
	// regardless of which goroutine got there first.
	err := p.ForEach(context.Background(), 10, func(i int) error {
		switch i {
		case 3:
			return errLow
		case 7:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("ForEach = %v, want lowest-index error %v", err, errLow)
	}
}

func TestForEachStopsIssuingAfterError(t *testing.T) {
	p := NewPool(1) // serial: deterministic claim order
	var ran int32
	err := p.ForEach(context.Background(), 100, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 4 {
			return errors.New("stop here")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := atomic.LoadInt32(&ran); got != 5 {
		t.Fatalf("ran %d iterations after failure at index 4, want 5", got)
	}
}

func TestForEachContextCancel(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := p.ForEach(ctx, 1000, func(i int) error {
		if atomic.AddInt32(&ran, 1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&ran); got >= 1000 {
		t.Fatalf("cancellation did not stop the loop (ran %d)", got)
	}
}

// TestForEachNested is the composability contract: a task running on the
// pool may fan out on the same pool without deadlocking, even when the
// pool is fully saturated by outer tasks.
func TestForEachNested(t *testing.T) {
	p := NewPool(2)
	var total int32
	done := make(chan error, 1)
	go func() {
		done <- p.ForEach(context.Background(), 4, func(i int) error {
			return p.ForEach(context.Background(), 8, func(j int) error {
				atomic.AddInt32(&total, 1)
				return nil
			})
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested ForEach deadlocked")
	}
	if total != 4*8 {
		t.Fatalf("nested loops ran %d bodies, want %d", total, 4*8)
	}
}

func job(id string, d time.Duration, err error) Job[string] {
	return Job[string]{ID: id, Run: func(ctx context.Context) (string, error) {
		if d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}
		return "value-" + id, err
	}}
}

// TestRunEmitsInInputOrder makes jobs finish in reverse order and checks
// both the emit sequence and the returned slice stay in input order.
func TestRunEmitsInInputOrder(t *testing.T) {
	p := NewPool(4)
	jobs := []Job[string]{
		job("a", 80*time.Millisecond, nil),
		job("b", 40*time.Millisecond, nil),
		job("c", 0, nil),
	}
	var emitted []string
	results, err := Run(context.Background(), p, jobs, func(r Result[string]) error {
		emitted = append(emitted, r.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if fmt.Sprint(emitted) != fmt.Sprint(want) {
		t.Fatalf("emit order %v, want %v", emitted, want)
	}
	for i, r := range results {
		if r.ID != want[i] || r.Value != "value-"+want[i] || r.Err != nil {
			t.Fatalf("results[%d] = %+v", i, r)
		}
	}
}

// TestRunSerialParallelSameResults runs the same job set at parallelism
// 1 and 8 and requires identical delivered values in identical order.
func TestRunSerialParallelSameResults(t *testing.T) {
	jobs := make([]Job[string], 20)
	for i := range jobs {
		// Stagger durations so parallel completion order differs from
		// input order.
		jobs[i] = job(fmt.Sprintf("j%02d", i), time.Duration(20-i)*time.Millisecond, nil)
	}
	var outputs []string
	for _, workers := range []int{1, 8} {
		var seq []string
		results, err := Run(context.Background(), NewPool(workers), jobs, func(r Result[string]) error {
			seq = append(seq, r.ID+"="+r.Value)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(jobs) {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		outputs = append(outputs, fmt.Sprint(seq))
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("serial and parallel deliveries differ:\n%s\n%s", outputs[0], outputs[1])
	}
}

func TestRunJobErrorDoesNotAbort(t *testing.T) {
	p := NewPool(2)
	boom := errors.New("boom")
	jobs := []Job[string]{job("a", 0, nil), job("b", 0, boom), job("c", 0, nil)}
	results, err := Run(context.Background(), p, jobs, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatal("healthy jobs reported errors")
	}
	if !errors.Is(results[1].Err, boom) {
		t.Fatalf("results[1].Err = %v", results[1].Err)
	}
}

func TestRunCancelMidSuite(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	jobs := []Job[string]{
		{ID: "first", Run: func(ctx context.Context) (string, error) {
			cancel() // cancel while the suite is mid-flight
			return "done", nil
		}},
		job("second", time.Hour, nil), // must never need to finish
	}
	done := make(chan struct{})
	var results []Result[string]
	var err error
	go func() {
		results, err = Run(ctx, p, jobs, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if len(results) > 1 {
		t.Fatalf("got %d results after early cancel", len(results))
	}
}

func TestRunEmitErrorAborts(t *testing.T) {
	p := NewPool(1)
	stop := errors.New("stop")
	jobs := []Job[string]{job("a", 0, nil), job("b", 0, nil), job("c", 0, nil)}
	var emitted int
	_, err := Run(context.Background(), p, jobs, func(Result[string]) error {
		emitted++
		return stop
	})
	if !errors.Is(err, stop) {
		t.Fatalf("Run = %v, want emit error", err)
	}
	if emitted != 1 {
		t.Fatalf("emit called %d times after aborting, want 1", emitted)
	}
}

// TestTryGoBudget pins TryGo's slot accounting: a pool of k workers
// hands out exactly k-1 helper slots (the caller's goroutine is the
// k-th worker), every helper releases its slot when fn returns, and a
// saturated pool answers false instead of blocking or queueing.
func TestTryGoBudget(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	block := make(chan struct{})
	var running atomic.Int32
	spawned := 0
	for p.TryGo(func() {
		running.Add(1)
		<-block
		running.Add(-1)
	}) {
		spawned++
		if spawned > workers {
			t.Fatalf("TryGo handed out %d slots, pool has %d workers", spawned, workers)
		}
	}
	if spawned != workers-1 {
		t.Fatalf("TryGo handed out %d helper slots, want %d (caller participates as the last worker)", spawned, workers-1)
	}
	// Saturated: immediate false, no blocking.
	if p.TryGo(func() {}) {
		t.Fatal("TryGo succeeded on a saturated pool")
	}
	close(block)
	// Slots must come back once helpers finish.
	deadline := time.Now().Add(10 * time.Second)
	for !p.TryGo(func() {}) {
		if time.Now().After(deadline) {
			t.Fatal("no slot released after helpers finished")
		}
		time.Sleep(time.Millisecond)
	}
	for running.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("helpers did not finish")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTryGoSharesBudgetWithForEach proves TryGo and ForEach draw from
// the same slot pool: with every helper slot pinned by TryGo, ForEach
// still completes on the caller's goroutine alone (the no-deadlock
// guarantee), and after release ForEach gets its helpers back.
func TestTryGoSharesBudgetWithForEach(t *testing.T) {
	p := NewPool(3)
	block := make(chan struct{})
	for p.TryGo(func() { <-block }) {
	}
	var visited atomic.Int32
	if err := p.ForEach(context.Background(), 5, func(i int) error {
		visited.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("ForEach on a TryGo-saturated pool: %v", err)
	}
	if visited.Load() != 5 {
		t.Fatalf("ForEach visited %d of 5 indices", visited.Load())
	}
	close(block)
}
