// Package runner provides the concurrent execution engine for the
// experiment suite: a bounded worker pool sized to the machine, a
// deterministic fan-out/fan-in for whole experiment drivers, and a
// nestable parallel-for for the sweep loops inside them.
//
// Two properties matter more than raw speed:
//
//   - Determinism. Jobs execute in any order, but results are always
//     delivered in input order, so the rendered output of a parallel run
//     is byte-identical to a serial one.
//   - Composability. A driver running on the pool may itself call
//     Pool.ForEach for its inner sweep without deadlocking: the calling
//     goroutine always participates in the work, so progress never
//     depends on acquiring an extra slot.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded concurrency budget shared by the experiment engine
// and the sweep loops inside drivers. The zero value is not usable; use
// NewPool.
type Pool struct {
	// sem holds one token per extra worker goroutine the pool may run
	// beyond the goroutines that call into it.
	sem chan struct{}
	// workers is the configured parallelism (>= 1).
	workers int
}

// NewPool returns a pool that runs at most workers tasks at once.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers-1), workers: workers}
}

// Workers returns the configured parallelism.
func (p *Pool) Workers() int { return p.workers }

// TryGo runs fn on a helper goroutine if a pool slot is immediately
// free, reporting whether it did. It never blocks and never queues: a
// false return means every slot is busy, and the caller — which keeps
// its own goroutine, mirroring ForEach's caller-participates discipline
// — should run fn itself if the work must happen now. Used by hosts
// that dispatch dynamically arriving work (internal/fleet's re-solve
// scheduler) rather than a fixed index range.
func (p *Pool) TryGo(fn func()) bool {
	select {
	case p.sem <- struct{}{}:
	default:
		return false
	}
	go func() {
		defer func() { <-p.sem }()
		fn()
	}()
	return true
}

// ForEach runs fn(i) for every i in [0, n), using the calling goroutine
// plus as many pool slots as are free, and returns the first error in
// index order. It stops issuing new indices once the context is
// cancelled or any fn has failed, and always waits for in-flight calls
// to finish before returning. fn must be safe for concurrent use.
//
// Because the caller works too, ForEach makes progress even when the
// pool is saturated — which is what makes it safe to nest inside jobs
// already running on the same pool.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	var (
		next int64 // next index to claim
		stop atomic.Bool
		mu   sync.Mutex
		errs = make(map[int]error)
	)
	record := func(i int, err error) {
		mu.Lock()
		errs[i] = err
		mu.Unlock()
		stop.Store(true)
	}
	work := func() {
		for !stop.Load() && ctx.Err() == nil {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				record(i, err)
			}
		}
	}
	var wg sync.WaitGroup
	// Helpers join only if a slot is free right now; otherwise the
	// caller alone drains the loop.
spawn:
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-p.sem; wg.Done() }()
				work()
			}()
		default:
			break spawn
		}
	}
	work()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	// First failure in index order, so parallel runs report the same
	// error a serial loop would.
	mu.Lock()
	defer mu.Unlock()
	first := -1
	for i := range errs {
		if first < 0 || i < first {
			first = i
		}
	}
	if first >= 0 {
		return errs[first]
	}
	return nil
}

// Job is one unit of work for Run: typically an experiment driver.
type Job[T any] struct {
	// ID names the job in results (e.g. "fig13").
	ID string
	// Run does the work. It must honor ctx cancellation for Run's
	// timeout and cancellation guarantees to extend mid-job.
	Run func(ctx context.Context) (T, error)
}

// Result is the outcome of one job, delivered in input order.
type Result[T any] struct {
	ID       string
	Value    T
	Err      error
	Duration time.Duration
}

// Run executes the jobs on the pool and returns their results in input
// order. If emit is non-nil it is called once per job, also in input
// order, as soon as every earlier job has finished — so a consumer
// printing reports sees them stream out in deterministic order while
// later jobs are still running. A non-nil error from emit aborts the
// run.
//
// Job errors do not stop the run (each Result carries its own Err);
// context cancellation does, and Run then returns ctx.Err() alongside
// the results completed so far.
func Run[T any](ctx context.Context, p *Pool, jobs []Job[T], emit func(Result[T]) error) ([]Result[T], error) {
	results := make([]Result[T], len(jobs))
	done := make([]chan struct{}, len(jobs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.ForEach(runCtx, len(jobs), func(i int) error {
			t0 := time.Now()
			v, err := jobs[i].Run(runCtx)
			results[i] = Result[T]{ID: jobs[i].ID, Value: v, Err: err, Duration: time.Since(t0)}
			close(done[i])
			return nil // job errors are per-result, not run-fatal
		})
	}()

	var emitErr error
	delivered := 0
deliver:
	for ; delivered < len(jobs); delivered++ {
		// A job that has already finished is always delivered, even if
		// cancellation fired in the same instant — otherwise the select
		// below would pick between two ready cases at random and the
		// cancellation cut would be nondeterministic.
		select {
		case <-done[delivered]:
		default:
			select {
			case <-done[delivered]:
			case <-runCtx.Done():
				// Cancelled (by the caller or an emit failure): jobs
				// that never started will never close done, so stop
				// waiting.
				break deliver
			}
		}
		if emit != nil && emitErr == nil {
			if err := emit(results[delivered]); err != nil {
				emitErr = err
				cancel()
			}
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results[:delivered], err
	}
	if emitErr != nil {
		return results[:delivered], emitErr
	}
	return results, nil
}
