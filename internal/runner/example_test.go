package runner_test

import (
	"context"
	"fmt"

	"repro/internal/runner"
)

// ForEach fans a loop body out over the pool. Results are written into
// index-addressed slots, so the output is deterministic regardless of
// which worker ran which index — the pattern every experiment driver's
// inner sweep uses.
func ExamplePool_ForEach() {
	pool := runner.NewPool(4)
	squares := make([]int, 6)
	err := pool.ForEach(context.Background(), len(squares), func(i int) error {
		squares[i] = i * i
		return nil
	})
	fmt.Println(squares, err)
	// Output: [0 1 4 9 16 25] <nil>
}

// Run executes whole jobs on the pool and delivers results in input
// order: the emit callback sees job "a" strictly before job "b" even if
// "b" finished first. This is what makes parallel tmbench output
// byte-identical to a serial run.
func ExampleRun() {
	pool := runner.NewPool(2)
	jobs := []runner.Job[string]{
		{ID: "a", Run: func(context.Context) (string, error) { return "first", nil }},
		{ID: "b", Run: func(context.Context) (string, error) { return "second", nil }},
	}
	_, err := runner.Run(context.Background(), pool, jobs, func(res runner.Result[string]) error {
		fmt.Println(res.ID, res.Value)
		return nil
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output:
	// a first
	// b second
}
