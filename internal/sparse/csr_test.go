package sparse

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func randomSparse(rng *rand.Rand, rows, cols int, density float64) *Matrix {
	b := NewBuilder(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				b.Add(r, c, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func TestBuilderAndAt(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(0, 1, 2)
	b.Add(2, 3, 5)
	b.Add(0, 1, 3) // duplicate: summed
	b.Add(1, 0, 0) // zero: dropped
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %v, want 5", got)
	}
	if got := m.At(2, 3); got != 5 {
		t.Fatalf("At(2,3) = %v, want 5", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Fatalf("At(1,0) = %v, want 0", got)
	}
}

func TestBuilderGrow(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Grow(100)
	if cap(b.entries) < 100 {
		t.Fatalf("Grow(100) left capacity %d", cap(b.entries))
	}
	b.Add(0, 0, 1)
	b.Add(2, 1, 2)
	b.Grow(-5) // no-op
	b.Grow(1)  // already have room: no reallocation needed
	b.Add(1, 2, 3)
	m := b.Build()
	if m.NNZ() != 3 || m.At(0, 0) != 1 || m.At(2, 1) != 2 || m.At(1, 2) != 3 {
		t.Fatalf("entries lost across Grow: nnz=%d", m.NNZ())
	}
	// Grow after entries exist must preserve them when reallocating.
	b2 := NewBuilder(2, 2)
	b2.Add(0, 0, 7)
	b2.Grow(50)
	b2.Add(1, 1, 8)
	m2 := b2.Build()
	if m2.At(0, 0) != 7 || m2.At(1, 1) != 8 {
		t.Fatal("Grow reallocation dropped entries")
	}
}

func TestBuilderBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := linalg.NewMatrix(6, 9)
	for i := range d.Data {
		if rng.Float64() < 0.3 {
			d.Data[i] = rng.NormFloat64()
		}
	}
	back := NewFromDense(d).ToDense()
	for i := range d.Data {
		if d.Data[i] != back.Data[i] {
			t.Fatal("dense round trip mismatch")
		}
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomSparse(rng, 15, 11, 0.25)
	d := m.ToDense()
	x := linalg.NewVector(11)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := m.MulVec(nil, x)
	want := d.MulVec(nil, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulVecTMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomSparse(rng, 15, 11, 0.25)
	d := m.ToDense()
	x := linalg.NewVector(15)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := m.MulVecT(nil, x)
	want := d.MulVecT(nil, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVecT[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomSparse(rng, 7, 13, 0.2)
	mt := m.T()
	if mt.Rows() != 13 || mt.Cols() != 7 {
		t.Fatalf("T shape %dx%d", mt.Rows(), mt.Cols())
	}
	for r := 0; r < m.Rows(); r++ {
		m.Row(r, func(c int, v float64) {
			if mt.At(c, r) != v {
				t.Fatalf("T mismatch at %d,%d", r, c)
			}
		})
	}
}

func TestSelectRows(t *testing.T) {
	b := NewBuilder(3, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 2)
	b.Add(2, 0, 3)
	m := b.Build()
	s := m.SelectRows([]int{2, 0, 2})
	if s.Rows() != 3 {
		t.Fatalf("Rows = %d", s.Rows())
	}
	if s.At(0, 0) != 3 || s.At(1, 0) != 1 || s.At(2, 0) != 3 {
		t.Fatal("SelectRows wrong content")
	}
}

func TestScale(t *testing.T) {
	b := NewBuilder(1, 2)
	b.Add(0, 0, 2)
	b.Add(0, 1, -3)
	m := b.Build().Scale(0.5)
	if m.At(0, 0) != 1 || m.At(0, 1) != -1.5 {
		t.Fatal("Scale wrong")
	}
}

func TestVStack(t *testing.T) {
	b1 := NewBuilder(2, 3)
	b1.Add(0, 0, 1)
	b1.Add(1, 2, 2)
	b2 := NewBuilder(1, 3)
	b2.Add(0, 1, 7)
	s := VStack(b1.Build(), b2.Build())
	if s.Rows() != 3 || s.Cols() != 3 {
		t.Fatalf("shape %dx%d", s.Rows(), s.Cols())
	}
	if s.At(0, 0) != 1 || s.At(1, 2) != 2 || s.At(2, 1) != 7 {
		t.Fatal("VStack wrong content")
	}
}

func TestColumnSupport(t *testing.T) {
	b := NewBuilder(3, 2)
	b.Add(0, 0, 1)
	b.Add(2, 0, 1)
	b.Add(1, 1, 1)
	sup := b.Build().ColumnSupport()
	if len(sup[0]) != 2 || sup[0][0] != 0 || sup[0][1] != 2 {
		t.Fatalf("support col 0 = %v", sup[0])
	}
	if len(sup[1]) != 1 || sup[1][0] != 1 {
		t.Fatalf("support col 1 = %v", sup[1])
	}
}

func TestRowNNZ(t *testing.T) {
	b := NewBuilder(2, 4)
	b.Add(0, 0, 1)
	b.Add(0, 3, 1)
	m := b.Build()
	if m.RowNNZ(0) != 2 || m.RowNNZ(1) != 0 {
		t.Fatal("RowNNZ wrong")
	}
}

// Property: (mᵀ)ᵀ equals m for random sparse matrices.
func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		m := randomSparse(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.3)
		tt := m.T().T()
		if tt.Rows() != m.Rows() || tt.Cols() != m.Cols() || tt.NNZ() != m.NNZ() {
			t.Fatal("shape/nnz mismatch after double transpose")
		}
		for r := 0; r < m.Rows(); r++ {
			m.Row(r, func(c int, v float64) {
				if tt.At(r, c) != v {
					t.Fatal("value mismatch after double transpose")
				}
			})
		}
	}
}

// Property: yᵀ(Mx) == (Mᵀy)ᵀx (adjoint identity).
func TestAdjointIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomSparse(rng, rows, cols, 0.3)
		x := linalg.NewVector(cols)
		y := linalg.NewVector(rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		lhs := linalg.Dot(y, m.MulVec(nil, x))
		rhs := linalg.Dot(m.MulVecT(nil, y), x)
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
		}
	}
}

func BenchmarkSparseMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randomSparse(rng, 284, 600, 0.05)
	x := linalg.NewVector(600)
	for i := range x {
		x[i] = rng.Float64()
	}
	dst := linalg.NewVector(284)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}
