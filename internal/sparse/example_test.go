package sparse_test

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// A routing matrix is a sparse 0/1 matrix: R[l][p] = 1 iff demand p
// crosses link l (eq. 1 of the paper). Link loads are then t = R·s.
func ExampleBuilder() {
	b := sparse.NewBuilder(2, 3) // 2 links, 3 demands
	b.Add(0, 0, 1)               // demand 0 crosses link 0
	b.Add(0, 2, 1)               // demand 2 crosses link 0
	b.Add(1, 1, 1)               // demand 1 crosses link 1
	b.Add(1, 2, 1)               // demand 2 crosses link 1
	r := b.Build()

	s := linalg.Vector{10, 20, 5} // demands in Mbps
	t := r.MulVec(nil, s)         // link loads t = R·s
	fmt.Println(r.Rows(), "links,", r.NNZ(), "nonzeros")
	fmt.Println("loads:", t)
	// Output:
	// 2 links, 4 nonzeros
	// loads: [15 25]
}

// MulVecT applies Rᵀ, the backprojection used by every gradient-based
// estimator: it spreads link residuals back onto the demands crossing
// each link.
func ExampleMatrix_MulVecT() {
	b := sparse.NewBuilder(2, 3)
	b.Add(0, 0, 1)
	b.Add(0, 2, 1)
	b.Add(1, 1, 1)
	b.Add(1, 2, 1)
	r := b.Build()

	resid := linalg.Vector{1, 2} // per-link residuals
	back := r.MulVecT(nil, resid)
	fmt.Println("backprojected:", back)
	// Output:
	// backprojected: [1 2 3]
}
