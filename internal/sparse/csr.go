// Package sparse implements compressed sparse row (CSR) matrices.
//
// Routing matrices are extremely sparse 0/1 matrices (a demand crosses only
// the links on its path), and the second-moment systems used by Vardi's
// method blow up to L(L+1)/2 rows; CSR keeps both the memory footprint and
// the matrix-vector products proportional to the number of nonzeros.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/linalg"
)

// Matrix is an immutable CSR matrix. Construct one with a Builder or from
// triplets via NewFromTriplets.
type Matrix struct {
	rows, cols int
	rowPtr     []int     // len rows+1
	colIdx     []int     // len nnz
	val        []float64 // len nnz
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.val) }

// Builder accumulates entries row by row to build a CSR matrix. Entries may
// be added to any row in any order; duplicates within a row are summed.
type Builder struct {
	rows, cols int
	entries    []triplet
}

type triplet struct {
	r, c int
	v    float64
}

// NewBuilder returns a Builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Grow preallocates capacity for n additional entries, so large assemblies
// (the second-moment systems of the Vardi and Cao estimators reach
// hundreds of thousands of entries on 100-PoP backbones) append without
// repeated reallocation.
func (b *Builder) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(b.entries) - len(b.entries); free < n {
		grown := make([]triplet, len(b.entries), len(b.entries)+n)
		copy(grown, b.entries)
		b.entries = grown
	}
}

// Add accumulates v at position (r, c). Zero values are dropped.
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of bounds for %dx%d", r, c, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.entries = append(b.entries, triplet{r, c, v})
}

// Build finalizes the matrix. The Builder may be reused afterwards but
// starts empty.
func (b *Builder) Build() *Matrix {
	m := NewFromTriplets(b.rows, b.cols, b.entries)
	b.entries = nil
	return m
}

// NewFromTriplets builds a CSR matrix from (row, col, value) triplets,
// summing duplicates.
func NewFromTriplets(rows, cols int, ts []triplet) *Matrix {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].r != ts[j].r {
			return ts[i].r < ts[j].r
		}
		return ts[i].c < ts[j].c
	})
	m := &Matrix{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(ts); {
		j := i + 1
		v := ts[i].v
		for j < len(ts) && ts[j].r == ts[i].r && ts[j].c == ts[i].c {
			v += ts[j].v
			j++
		}
		if v != 0 {
			m.colIdx = append(m.colIdx, ts[i].c)
			m.val = append(m.val, v)
			m.rowPtr[ts[i].r+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// NewFromDense converts a dense matrix to CSR, dropping exact zeros.
func NewFromDense(d *linalg.Matrix) *Matrix {
	b := NewBuilder(d.Rows, d.Cols)
	for i := 0; i < d.Rows; i++ {
		for j, x := range d.Row(i) {
			if x != 0 {
				b.Add(i, j, x)
			}
		}
	}
	return b.Build()
}

// ToDense converts m to a dense matrix.
func (m *Matrix) ToDense() *linalg.Matrix {
	d := linalg.NewMatrix(m.rows, m.cols)
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			d.Set(r, m.colIdx[k], m.val[k])
		}
	}
	return d
}

// At returns element (r, c) (O(log nnz-in-row)).
func (m *Matrix) At(r, c int) float64 {
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], c)
	if k < hi && m.colIdx[k] == c {
		return m.val[k]
	}
	return 0
}

// Equal reports whether m and o have the same shape and exactly the
// same stored entries (CSR normal form makes this a linear comparison).
// It is how a routing hot-swap detects that the "new" matrix is the one
// already installed and degrades to a no-op.
func (m *Matrix) Equal(o *Matrix) bool {
	if m == o {
		return true
	}
	if m == nil || o == nil || m.rows != o.rows || m.cols != o.cols || len(m.val) != len(o.val) {
		return false
	}
	for r := 0; r <= m.rows; r++ {
		if m.rowPtr[r] != o.rowPtr[r] {
			return false
		}
	}
	for k := range m.val {
		if m.colIdx[k] != o.colIdx[k] || m.val[k] != o.val[k] {
			return false
		}
	}
	return true
}

// Row calls fn(col, val) for each stored entry in row r, in column order.
func (m *Matrix) Row(r int, fn func(c int, v float64)) {
	for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
		fn(m.colIdx[k], m.val[k])
	}
}

// RowNNZ returns the number of stored entries in row r.
func (m *Matrix) RowNNZ(r int) int { return m.rowPtr[r+1] - m.rowPtr[r] }

// MulVec computes dst = m·x. If dst is nil a new vector is allocated.
// dst must not alias x.
func (m *Matrix) MulVec(dst, x linalg.Vector) linalg.Vector {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch %dx%d * %d", m.rows, m.cols, len(x)))
	}
	if dst == nil {
		dst = linalg.NewVector(m.rows)
	} else if len(dst) != m.rows {
		panic("sparse: MulVec bad dst length")
	}
	for r := 0; r < m.rows; r++ {
		var s float64
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		dst[r] = s
	}
	return dst
}

// MulVecT computes dst = mᵀ·x. If dst is nil a new vector is allocated.
// dst must not alias x.
func (m *Matrix) MulVecT(dst, x linalg.Vector) linalg.Vector {
	if len(x) != m.rows {
		panic(fmt.Sprintf("sparse: MulVecT shape mismatch %dx%d^T * %d", m.rows, m.cols, len(x)))
	}
	if dst == nil {
		dst = linalg.NewVector(m.cols)
	} else if len(dst) != m.cols {
		panic("sparse: MulVecT bad dst length")
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			dst[m.colIdx[k]] += m.val[k] * xr
		}
	}
	return dst
}

// T returns the transpose as a new CSR matrix.
func (m *Matrix) T() *Matrix {
	b := NewBuilder(m.cols, m.rows)
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			b.Add(m.colIdx[k], r, m.val[k])
		}
	}
	return b.Build()
}

// SelectRows returns a new matrix consisting of the given rows of m, in
// order. Row indices may repeat.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	b := NewBuilder(len(rows), m.cols)
	for i, r := range rows {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			b.Add(i, m.colIdx[k], m.val[k])
		}
	}
	return b.Build()
}

// Scale returns a new matrix with every entry multiplied by a.
func (m *Matrix) Scale(a float64) *Matrix {
	s := &Matrix{rows: m.rows, cols: m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		val:    make([]float64, len(m.val)),
	}
	for i, v := range m.val {
		s.val[i] = v * a
	}
	return s
}

// VStack stacks matrices vertically. All must share the same column count.
func VStack(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("sparse: VStack of nothing")
	}
	cols := ms[0].cols
	rows := 0
	for _, m := range ms {
		if m.cols != cols {
			panic("sparse: VStack column mismatch")
		}
		rows += m.rows
	}
	b := NewBuilder(rows, cols)
	off := 0
	for _, m := range ms {
		for r := 0; r < m.rows; r++ {
			for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
				b.Add(off+r, m.colIdx[k], m.val[k])
			}
		}
		off += m.rows
	}
	return b.Build()
}

// ColumnSupport returns, for each column, the list of rows with a nonzero
// entry in that column.
func (m *Matrix) ColumnSupport() [][]int {
	sup := make([][]int, m.cols)
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			c := m.colIdx[k]
			sup[c] = append(sup[c], r)
		}
	}
	return sup
}
