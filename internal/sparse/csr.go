// Package sparse implements compressed sparse row (CSR) matrices.
//
// Routing matrices are extremely sparse 0/1 matrices (a demand crosses only
// the links on its path), and the second-moment systems used by Vardi's
// method blow up to L(L+1)/2 rows; CSR keeps both the memory footprint and
// the matrix-vector products proportional to the number of nonzeros.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/linalg"
)

// Matrix is an immutable CSR matrix. Construct one with a Builder or from
// triplets via NewFromTriplets.
type Matrix struct {
	rows, cols int
	rowPtr     []int     // len rows+1
	colIdx     []int     // len nnz
	val        []float64 // len nnz
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.val) }

// Builder accumulates entries row by row to build a CSR matrix. Entries may
// be added to any row in any order; duplicates within a row are summed.
//
// A Builder may be reused across assemblies: Build truncates the entry
// buffer without releasing its capacity, so a Grow-sized Builder driving a
// repeated assembly loop (the Vardi/Cao second-moment systems) appends
// into the same backing array every round instead of reallocating it.
type Builder struct {
	rows, cols int
	entries    []Triplet
}

// Triplet is one (row, col, value) coordinate entry, the exchange format
// of NewFromTriplets and the Builder's internal accumulation record.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewBuilder returns a Builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Grow preallocates capacity for n additional entries, so large assemblies
// (the second-moment systems of the Vardi and Cao estimators reach
// hundreds of thousands of entries on 100-PoP backbones) append without
// repeated reallocation.
func (b *Builder) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(b.entries) - len(b.entries); free < n {
		grown := make([]Triplet, len(b.entries), len(b.entries)+n)
		copy(grown, b.entries)
		b.entries = grown
	}
}

// Add accumulates v at position (r, c). Zero values are dropped.
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of bounds for %dx%d", r, c, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.entries = append(b.entries, Triplet{r, c, v})
}

// Build finalizes the matrix. The Builder may be reused afterwards and
// starts empty, but keeps its accumulated (and Grow-preallocated)
// capacity — safe because NewFromTriplets copies the entries into fresh
// CSR arrays, so the next assembly cannot alias the built matrix.
func (b *Builder) Build() *Matrix {
	m := NewFromTriplets(b.rows, b.cols, b.entries)
	b.entries = b.entries[:0]
	return m
}

// NewFromTriplets builds a CSR matrix from (row, col, value) triplets,
// summing duplicates. The triplet slice is sorted in place (by row, then
// column) as a side effect; its contents are copied, never retained.
func NewFromTriplets(rows, cols int, ts []Triplet) *Matrix {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Row != ts[j].Row {
			return ts[i].Row < ts[j].Row
		}
		return ts[i].Col < ts[j].Col
	})
	m := &Matrix{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(ts); {
		j := i + 1
		v := ts[i].Val
		for j < len(ts) && ts[j].Row == ts[i].Row && ts[j].Col == ts[i].Col {
			v += ts[j].Val
			j++
		}
		if v != 0 {
			m.colIdx = append(m.colIdx, ts[i].Col)
			m.val = append(m.val, v)
			m.rowPtr[ts[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// NewFromDense converts a dense matrix to CSR, dropping exact zeros.
func NewFromDense(d *linalg.Matrix) *Matrix {
	b := NewBuilder(d.Rows, d.Cols)
	for i := 0; i < d.Rows; i++ {
		for j, x := range d.Row(i) {
			if x != 0 {
				b.Add(i, j, x)
			}
		}
	}
	return b.Build()
}

// ToDense converts m to a dense matrix.
func (m *Matrix) ToDense() *linalg.Matrix {
	d := linalg.NewMatrix(m.rows, m.cols)
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			d.Set(r, m.colIdx[k], m.val[k])
		}
	}
	return d
}

// At returns element (r, c) (O(log nnz-in-row)).
func (m *Matrix) At(r, c int) float64 {
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], c)
	if k < hi && m.colIdx[k] == c {
		return m.val[k]
	}
	return 0
}

// Equal reports whether m and o have the same shape and exactly the
// same stored entries (CSR normal form makes this a linear comparison).
// It is how a routing hot-swap detects that the "new" matrix is the one
// already installed and degrades to a no-op.
func (m *Matrix) Equal(o *Matrix) bool {
	if m == o {
		return true
	}
	if m == nil || o == nil || m.rows != o.rows || m.cols != o.cols || len(m.val) != len(o.val) {
		return false
	}
	for r := 0; r <= m.rows; r++ {
		if m.rowPtr[r] != o.rowPtr[r] {
			return false
		}
	}
	for k := range m.val {
		if m.colIdx[k] != o.colIdx[k] || m.val[k] != o.val[k] {
			return false
		}
	}
	return true
}

// Row calls fn(col, val) for each stored entry in row r, in column order.
func (m *Matrix) Row(r int, fn func(c int, v float64)) {
	for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
		fn(m.colIdx[k], m.val[k])
	}
}

// RowNNZ returns the number of stored entries in row r.
func (m *Matrix) RowNNZ(r int) int { return m.rowPtr[r+1] - m.rowPtr[r] }

// MulVec computes dst = m·x. If dst is nil a new vector is allocated.
// dst must not alias x.
func (m *Matrix) MulVec(dst, x linalg.Vector) linalg.Vector {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch %dx%d * %d", m.rows, m.cols, len(x)))
	}
	if dst == nil {
		dst = linalg.NewVector(m.rows)
	} else if len(dst) != m.rows {
		panic("sparse: MulVec bad dst length")
	}
	for r := 0; r < m.rows; r++ {
		var s float64
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		dst[r] = s
	}
	return dst
}

// MulVecT computes dst = mᵀ·x. If dst is nil a new vector is allocated.
// dst must not alias x.
func (m *Matrix) MulVecT(dst, x linalg.Vector) linalg.Vector {
	if len(x) != m.rows {
		panic(fmt.Sprintf("sparse: MulVecT shape mismatch %dx%d^T * %d", m.rows, m.cols, len(x)))
	}
	if dst == nil {
		dst = linalg.NewVector(m.cols)
	} else if len(dst) != m.cols {
		panic("sparse: MulVecT bad dst length")
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			dst[m.colIdx[k]] += m.val[k] * xr
		}
	}
	return dst
}

// reshape points dst at a rows×cols layout with nnz stored entries,
// reusing dst's backing arrays when their capacity suffices. A nil dst
// allocates a fresh matrix. The returned matrix's arrays are NOT zeroed.
func reshape(dst *Matrix, rows, cols, nnz int) *Matrix {
	if dst == nil {
		dst = &Matrix{}
	}
	dst.rows, dst.cols = rows, cols
	if cap(dst.rowPtr) >= rows+1 {
		dst.rowPtr = dst.rowPtr[:rows+1]
	} else {
		dst.rowPtr = make([]int, rows+1)
	}
	if cap(dst.colIdx) >= nnz {
		dst.colIdx = dst.colIdx[:nnz]
	} else {
		dst.colIdx = make([]int, nnz)
	}
	if cap(dst.val) >= nnz {
		dst.val = dst.val[:nnz]
	} else {
		dst.val = make([]float64, nnz)
	}
	return dst
}

// T returns the transpose as a new CSR matrix.
func (m *Matrix) T() *Matrix { return m.TInto(nil) }

// TInto writes the transpose of m into dst, reusing dst's backing arrays
// when they are large enough (nil dst allocates). dst must not be m. The
// entries come out identical to T()'s — per transposed row in ascending
// column order — so repeated re-assemblies (the Vardi/Cao second-moment
// caches) can hold one reusable transpose buffer.
func (m *Matrix) TInto(dst *Matrix) *Matrix {
	if dst == m {
		panic("sparse: TInto dst must not alias the receiver")
	}
	dst = reshape(dst, m.cols, m.rows, len(m.val))
	for i := range dst.rowPtr {
		dst.rowPtr[i] = 0
	}
	for _, c := range m.colIdx {
		dst.rowPtr[c+1]++
	}
	for r := 0; r < dst.rows; r++ {
		dst.rowPtr[r+1] += dst.rowPtr[r]
	}
	// next[c] tracks the insertion cursor of transposed row c; walking m's
	// rows in order lands each transposed row's entries in ascending
	// original-row (= new column) order, matching the builder-based layout.
	next := dst.rowPtr
	cursor := make([]int, dst.rows)
	copy(cursor, next[:dst.rows])
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			c := m.colIdx[k]
			dst.colIdx[cursor[c]] = r
			dst.val[cursor[c]] = m.val[k]
			cursor[c]++
		}
	}
	return dst
}

// SelectRows returns a new matrix consisting of the given rows of m, in
// order. Row indices may repeat.
func (m *Matrix) SelectRows(rows []int) *Matrix { return m.SelectRowsInto(nil, rows) }

// SelectRowsInto writes the selected rows of m (in order, repeats
// allowed) into dst, reusing dst's backing arrays when they are large
// enough (nil dst allocates). dst must not be m. Each source row's
// entries are already in CSR normal form, so the copy is direct.
func (m *Matrix) SelectRowsInto(dst *Matrix, rows []int) *Matrix {
	if dst == m {
		panic("sparse: SelectRowsInto dst must not alias the receiver")
	}
	nnz := 0
	for _, r := range rows {
		nnz += m.rowPtr[r+1] - m.rowPtr[r]
	}
	dst = reshape(dst, len(rows), m.cols, nnz)
	dst.rowPtr[0] = 0
	at := 0
	for i, r := range rows {
		lo, hi := m.rowPtr[r], m.rowPtr[r+1]
		at += copy(dst.colIdx[at:], m.colIdx[lo:hi])
		copy(dst.val[at-(hi-lo):], m.val[lo:hi])
		dst.rowPtr[i+1] = at
	}
	return dst
}

// Scale returns a new matrix with every entry multiplied by a.
func (m *Matrix) Scale(a float64) *Matrix { return m.ScaleInto(nil, a) }

// ScaleInto writes a copy of m with every entry multiplied by a into
// dst, reusing dst's backing arrays when they are large enough (nil dst
// allocates). dst may be m itself for an in-place scale.
func (m *Matrix) ScaleInto(dst *Matrix, a float64) *Matrix {
	if dst == m {
		for i := range m.val {
			m.val[i] *= a
		}
		return m
	}
	dst = reshape(dst, m.rows, m.cols, len(m.val))
	copy(dst.rowPtr, m.rowPtr)
	copy(dst.colIdx, m.colIdx)
	for i, v := range m.val {
		dst.val[i] = v * a
	}
	return dst
}

// VStack stacks matrices vertically. All must share the same column count.
func VStack(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("sparse: VStack of nothing")
	}
	cols := ms[0].cols
	rows := 0
	for _, m := range ms {
		if m.cols != cols {
			panic("sparse: VStack column mismatch")
		}
		rows += m.rows
	}
	b := NewBuilder(rows, cols)
	off := 0
	for _, m := range ms {
		for r := 0; r < m.rows; r++ {
			for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
				b.Add(off+r, m.colIdx[k], m.val[k])
			}
		}
		off += m.rows
	}
	return b.Build()
}

// ColumnSupport returns, for each column, the list of rows with a nonzero
// entry in that column.
func (m *Matrix) ColumnSupport() [][]int {
	sup := make([][]int, m.cols)
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			c := m.colIdx[k]
			sup[c] = append(sup[c], r)
		}
	}
	return sup
}
