package sparse_test

import (
	"testing"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// TestTripletFromOutside pins the exported construction surface: an
// external package (here sparse_test) must be able to build matrices
// from []sparse.Triplet literals — the bulk-construction path callers
// outside the package use when they assemble entries themselves instead
// of driving a Builder.
func TestTripletFromOutside(t *testing.T) {
	ts := []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1},
		{Row: 0, Col: 2, Val: 3},
		{Row: 1, Col: 1, Val: 2},
	}
	m := sparse.NewFromTriplets(2, 3, ts)
	if m.Rows() != 2 || m.Cols() != 3 || m.NNZ() != 3 {
		t.Fatalf("got %dx%d with %d nnz, want 2x3 with 3", m.Rows(), m.Cols(), m.NNZ())
	}
	if got := m.At(0, 2); got != 3 {
		t.Fatalf("At(0,2) = %v, want 3", got)
	}
	if got := m.At(1, 1); got != 2 {
		t.Fatalf("At(1,1) = %v, want 2", got)
	}
}

func benchMatrix(tb testing.TB) *sparse.Matrix {
	tb.Helper()
	b := sparse.NewBuilder(6, 8)
	for r := 0; r < 6; r++ {
		for c := r % 3; c < 8; c += 3 {
			b.Add(r, c, float64(r+c+1))
		}
	}
	return b.Build()
}

// TestMulVecReusedDstAllocFree pins the buffer-reuse contract of the
// multiply kernels: with a correctly sized dst, MulVec and MulVecT are
// the zero-allocation inner loop every iterative solver spins on.
func TestMulVecReusedDstAllocFree(t *testing.T) {
	m := benchMatrix(t)
	x := linalg.NewVector(m.Cols())
	for i := range x {
		x[i] = float64(i + 1)
	}
	y := linalg.NewVector(m.Rows())
	if allocs := testing.AllocsPerRun(100, func() { m.MulVec(y, x) }); allocs != 0 {
		t.Errorf("MulVec with reused dst allocated %.0f times per run, want 0", allocs)
	}
	xt := linalg.NewVector(m.Cols())
	if allocs := testing.AllocsPerRun(100, func() { m.MulVecT(xt, y) }); allocs != 0 {
		t.Errorf("MulVecT with reused dst allocated %.0f times per run, want 0", allocs)
	}
}
