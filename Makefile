# Targets mirror the CI jobs in .github/workflows/ci.yml so that what
# passes locally passes there.

GO ?= go

.PHONY: build test test-short bench fmt vet check

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 30m ./...

test-short:
	$(GO) test -short -race ./...

# Full driver-by-driver benchmarks plus the serial-vs-parallel suite
# comparison. Narrow with e.g. BENCH='FullSuite'.
BENCH ?= .
bench:
	$(GO) test -bench '$(BENCH)' -benchtime 1x -run '^$$' .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: vet fmt build test-short
