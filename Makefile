# Targets mirror the CI jobs in .github/workflows/ci.yml so that what
# passes locally passes there.

GO ?= go

.PHONY: build test test-short bench bench-baseline bench-check docs fmt vet staticcheck cover smoke timeline-smoke cluster-smoke obs-smoke loadtest check

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 30m ./...

test-short:
	$(GO) test -short -race ./...

# Full driver-by-driver benchmarks plus the serial-vs-parallel suite
# comparison. Narrow with e.g. BENCH='FullSuite'.
BENCH ?= .
bench:
	$(GO) test -timeout 60m -bench '$(BENCH)' -benchtime 1x -run '^$$' .

# Regenerate a checked-in benchmark baseline (BASELINE names the output;
# each PR that moves the perf trajectory writes its own BENCH_prN.json
# next to the seed's). Absolute numbers are machine-dependent; the
# baselines exist so successive PRs on the same hardware have a perf
# trajectory to diff against.
# The awk locates each unit token instead of using fixed field numbers:
# benchmarks that b.ReportMetric a custom metric (e.g. MRE) print it
# between ns/op and B/op, which would shift positional fields.
BASELINE ?= BENCH_seed.json
bench-baseline:
	$(GO) test -timeout 60m -bench . -benchtime 1x -benchmem -run '^$$' . > bench.out
	awk 'BEGIN { print "{"; first=1 } \
	     /^Benchmark/ { name=$$1; sub(/-[0-9]+$$/, "", name); \
	       ns="0"; bytes="0"; allocs="0"; \
	       for (i = 2; i <= NF; i++) { \
	         if ($$i == "ns/op") ns=$$(i-1); \
	         else if ($$i == "B/op") bytes=$$(i-1); \
	         else if ($$i == "allocs/op") allocs=$$(i-1); \
	       } \
	       if (!first) printf(",\n"); first=0; \
	       printf("  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs) } \
	     END { print "\n}" }' bench.out > $(BASELINE)
	@rm -f bench.out
	@echo "wrote $(BASELINE)"

# Benchmark regression gate, as run by CI's bench job: the scale
# benchmarks plus two seed-era anchors, compared against the checked-in
# baselines at a 2x ns/op threshold and — via -benchmem — a 2x allocs/op
# threshold (cmd/benchdiff; first baseline containing a benchmark wins).
# (No tee: the recipe must fail on go test's exit code, not the pipe
# tail's, so a b.Fatal mid-run cannot produce a green partial gate.)
bench-check:
	$(GO) test -timeout 30m -bench 'Scale|Table1Vardi|ScenarioBuild|StreamResolve|FleetResolveFanout|SnapshotFanout|TimelineSwap|PromScrape' -benchtime 1x -benchmem -run '^$$' . > bench-check.out
	$(GO) run ./cmd/benchdiff -factor 2 -alloc-factor 2 -baseline BENCH_pr10.json -baseline BENCH_pr8.json -baseline BENCH_seed.json -baseline BENCH_pr3.json -baseline BENCH_pr4.json -baseline BENCH_pr5.json -baseline BENCH_pr6.json -baseline BENCH_pr7.json bench-check.out
	@rm -f bench-check.out

# Docs gate: every package carries a package comment, the README flag
# table matches the real flag sets, METHODS.md covers every estimation
# method and experiment ID, docs/API.md lists every served route, and
# docs/METRICS.md matches the live /metrics/prom registries.
docs:
	$(GO) test -run 'TestPackageComments|TestREADMEFlagDrift|TestMETHODSCoverage|TestAPIDocDrift|TestMetricsDocDrift' .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Pinned to the version and check set CI's check job uses; bump the
# two together.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2024.1.1 -checks 'SA*' ./...

# Coverage over the library packages, printing the total CI's floor
# gates on (COVER_FLOOR in .github/workflows/ci.yml; bump it when new
# tests raise the total, leaving a few points of slack).
cover:
	$(GO) test -timeout 30m -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1
	@rm -f cover.out

# Fleet serving smoke: boot a 4-tenant tmserve fleet, read every
# tenant's snapshot, restart from -checkpoint-dir (CI's fleet-smoke job).
smoke:
	bash scripts/fleet_smoke.sh

# Timeline smoke: drive a 2-tenant scripted fleet through one full
# failure + restore cycle, gating on zero tenant errors and a recovered
# snapshot on the restored topology (CI's timeline-smoke job).
timeline-smoke:
	bash scripts/timeline_smoke.sh

# Cluster smoke: boot a 3-node cluster plus a coordinator, read every
# tenant through the coordinator, kill the node owning the scripted
# timeline after its topology swap, and gate on the warm standby
# takeover via checkpoint handoff (CI's cluster-smoke job).
cluster-smoke:
	bash scripts/cluster_smoke.sh

# Observability smoke: boot a 2-tenant fleet with a scripted
# flash-crowd tenant, gate on every telemetry family appearing on a
# live /metrics/prom scrape, ride the drift spike until the anomaly
# gauge and the degraded /healthz flip — then recover — and lint the
# live exposition with internal/obs's validator (CI's obs-smoke job).
obs-smoke:
	bash scripts/obs_smoke.sh

# Serving load test: drive a 2-tenant tmserve fleet with cmd/tmload's
# poll + SSE client mix for ~10s, gating on zero errors and the p99
# snapshot latency bound (CI's loadtest job).
loadtest:
	bash scripts/loadtest.sh

check: vet fmt build docs test-short
