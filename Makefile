# Targets mirror the CI jobs in .github/workflows/ci.yml so that what
# passes locally passes there.

GO ?= go

.PHONY: build test test-short bench bench-baseline docs fmt vet check

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 30m ./...

test-short:
	$(GO) test -short -race ./...

# Full driver-by-driver benchmarks plus the serial-vs-parallel suite
# comparison. Narrow with e.g. BENCH='FullSuite'.
BENCH ?= .
bench:
	$(GO) test -timeout 60m -bench '$(BENCH)' -benchtime 1x -run '^$$' .

# Regenerate the checked-in benchmark baseline. Absolute numbers are
# machine-dependent; the baseline exists so successive PRs on the same
# hardware have a perf trajectory to diff against.
bench-baseline:
	$(GO) test -timeout 60m -bench . -benchtime 1x -benchmem -run '^$$' . > bench.out
	awk 'BEGIN { print "{"; first=1 } \
	     /^Benchmark/ { name=$$1; sub(/-[0-9]+$$/, "", name); \
	       if (!first) printf(",\n"); first=0; \
	       printf("  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $$3, $$5, $$7) } \
	     END { print "\n}" }' bench.out > BENCH_seed.json
	@rm -f bench.out
	@echo "wrote BENCH_seed.json"

# Docs gate: every package carries a package comment, the README flag
# table matches the real flag sets, and METHODS.md covers every
# estimation method and experiment ID.
docs:
	$(GO) test -run 'TestPackageComments|TestREADMEFlagDrift|TestMETHODSCoverage' .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: vet fmt build docs test-short
