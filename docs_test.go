// Documentation gates: these tests fail when the docs drift from the
// code, and CI's docs step runs them explicitly (make docs).
package repro_test

import (
	"context"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve"
)

// TestPackageComments fails when any internal/* package (or the root
// package and cmd/examples binaries) lacks a package-level doc comment.
func TestPackageComments(t *testing.T) {
	var dirs []string
	for _, glob := range []string{"internal/*", "cmd/*", "examples/*", "."} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, m...)
	}
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		var sources []string
		for _, f := range files {
			if !strings.HasSuffix(f, "_test.go") {
				sources = append(sources, f)
			}
		}
		if len(sources) == 0 {
			continue
		}
		documented := false
		for _, f := range sources {
			fset := token.NewFileSet()
			af, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", f, err)
			}
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package in %s has no package-level doc comment in any file", dir)
		}
	}
}

// flagDefRe matches flag definitions in command sources:
// flag.String("name", …), fs.Int64("name", …), flag.StringVar(&v, "name", …).
var flagDefRe = regexp.MustCompile(`\.(?:String|Bool|Int|Int64|Uint|Float64|Duration)(?:Var)?\(\s*(?:&[\w.\[\]]+\s*,\s*)?"([a-zA-Z][\w-]*)"`)

// TestREADMEFlagDrift fails when a command defines a flag that the
// README's "Commands and flags" table does not mention (the drift this
// PR's audit fixed, e.g. tmbench -quiet).
func TestREADMEFlagDrift(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	cmds, err := filepath.Glob("cmd/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) < 5 {
		t.Fatalf("found only %d commands under cmd/", len(cmds))
	}
	for _, dir := range cmds {
		name := filepath.Base(dir)
		row := ""
		for _, line := range strings.Split(string(readme), "\n") {
			if strings.HasPrefix(line, fmt.Sprintf("| `%s`", name)) {
				row = line
				break
			}
		}
		if row == "" {
			t.Errorf("README has no flags-table row for command %s", name)
			continue
		}
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range flagDefRe.FindAllStringSubmatch(string(src), -1) {
				flag := m[1]
				// Boundary-anchored: "-reg" must not be satisfied by
				// "-region" appearing in the same row.
				re := regexp.MustCompile("-" + regexp.QuoteMeta(flag) + `($|[^a-zA-Z0-9-])`)
				if !re.MatchString(row) {
					t.Errorf("README row for %s does not document flag -%s", name, flag)
				}
			}
		}
	}
}

// TestAPIDocDrift fails when docs/API.md stops covering a route the
// server actually answers: every row of serve.Routes() — the single
// source of truth the mux is built from — must appear in the document
// as a backticked "METHOD /path" cell. (The reverse direction, every
// documented route being real, is TestRoutesAllServed in
// internal/serve.)
func TestAPIDocDrift(t *testing.T) {
	doc, err := os.ReadFile("docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range serve.Routes() {
		cell := "`" + rt.Method + " " + rt.Pattern + "`"
		if !strings.Contains(string(doc), cell) {
			t.Errorf("docs/API.md does not document route %s", cell)
		}
	}
	// Coordinator mode has its own route table (serve.CoordinatorRoutes,
	// the mux source for -coordinator processes); its rows must be
	// documented under the same cell convention.
	for _, rt := range serve.CoordinatorRoutes() {
		cell := "`" + rt.Method + " " + rt.Pattern + "`"
		if !strings.Contains(string(doc), cell) {
			t.Errorf("docs/API.md does not document coordinator route %s", cell)
		}
	}
	// The negotiation vocabulary must stay documented too: these are the
	// strings clients hardcode.
	for _, token := range []string{serve.DeltaMediaType, "If-None-Match", "min_version", "Retry-After", "X-Snapshot-Version", "X-Delta-From", "X-Tenant-Node"} {
		if !strings.Contains(string(doc), token) {
			t.Errorf("docs/API.md does not mention %q", token)
		}
	}
}

// TestMETHODSCoverage fails when METHODS.md stops covering an estimation
// entry point or an experiment driver ID — the "paper-to-code map covers
// all estimation methods evaluated by the suite" acceptance criterion.
func TestMETHODSCoverage(t *testing.T) {
	methods, err := os.ReadFile("METHODS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(methods)
	entryPoints := []string{
		"core.Gravity", "core.GeneralizedGravity", "core.GravityFromTotals",
		"core.Kruithof", "core.Vardi", "core.Entropy", "core.Bayesian",
		"core.EstimateFanouts", "core.WorstCaseBounds",
		"core.DirectMeasurementCurve", "core.IterativeBayesian", "core.Cao",
		"core.MRE", "core.ShareThreshold",
	}
	for _, ep := range entryPoints {
		if !strings.Contains(doc, ep) {
			t.Errorf("METHODS.md does not mention entry point %s", ep)
		}
	}
	for _, d := range experiments.AllDrivers() {
		if !strings.Contains(doc, "`"+d.ID+"`") {
			t.Errorf("METHODS.md does not mention experiment ID %s (%s)", d.ID, d.Title)
		}
	}
}

// TestMetricsDocDrift fails when docs/METRICS.md and the live metric
// registries diverge: every family a production daemon registers must
// appear as a table row with matching type and label set, and every
// documented row must name a family that still exists. The registries
// are built exactly the way the daemons build them — one shared
// registry through fleet.Options.Metrics and serve.Options.Metrics,
// plus the coordinator families — so a rename, a label change or a
// forgotten doc row all fail go test.
func TestMetricsDocDrift(t *testing.T) {
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := fleet.New(runner.NewPool(1), fleet.Options{Metrics: reg, AllowEmpty: true})
	serve.New(ctx, f, serve.Options{Metrics: reg})
	// Coordinator families live on their own registry in production;
	// names are disjoint, so one registry can enumerate all three layers.
	serve.RegisterCoordinatorMetrics(reg, func() []cluster.NodeReport { return nil })

	registered := make(map[string]obs.Family)
	for _, fam := range reg.Families() {
		registered[fam.Name] = fam
	}

	doc, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	rowRe := regexp.MustCompile("(?m)^\\| `(tm_[a-z0-9_]+)` \\| (counter|gauge|histogram) \\| ([^|]*) \\|")
	documented := make(map[string]bool)
	for _, m := range rowRe.FindAllStringSubmatch(string(doc), -1) {
		name, typ := m[1], m[2]
		var labels []string
		for _, l := range regexp.MustCompile("`([a-z_]+)`").FindAllStringSubmatch(m[3], -1) {
			labels = append(labels, l[1])
		}
		documented[name] = true
		fam, ok := registered[name]
		if !ok {
			t.Errorf("docs/METRICS.md documents %s, which no registry exports", name)
			continue
		}
		if string(fam.Type) != typ {
			t.Errorf("docs/METRICS.md says %s is a %s; the registry says %s", name, typ, fam.Type)
		}
		if strings.Join(labels, ",") != strings.Join(fam.Labels, ",") {
			t.Errorf("docs/METRICS.md says %s has labels %v; the registry says %v", name, labels, fam.Labels)
		}
	}
	for name := range registered {
		if !documented[name] {
			t.Errorf("registry exports %s but docs/METRICS.md does not document it", name)
		}
	}
	if len(documented) == 0 {
		t.Fatal("no metric rows parsed from docs/METRICS.md")
	}
}
