#!/usr/bin/env bash
# Serving load test, as run by CI's loadtest job (and `make loadtest`):
# build tmserve and tmload, boot a 2-tenant fleet replaying on a pace
# slow enough to outlive the test, then drive it with tmload's full
# client mix — a burst arrival of conditional pollers, delta pollers and
# SSE subscribers — for ~10 seconds across both tenants. tmload itself
# exits nonzero on any client-observed error or a p99 snapshot latency
# past the bound, so the script's exit code IS the gate.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pid=""
cleanup() {
  if [ -n "$pid" ]; then
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  fi
  rm -rf "$workdir" 2>/dev/null || true
}
trap cleanup EXIT

addr="127.0.0.1:${LOADTEST_PORT:-17482}"
base="http://$addr"

say() { echo "loadtest: $*"; }

say "building tmserve and tmload"
go build -o "$workdir/tmserve" ./cmd/tmserve
go build -o "$workdir/tmload" ./cmd/tmload

# cycles -1 keeps both tenants replaying (and publishing fresh versions
# for the long-poll/SSE clients) for the whole run; the 150ms pace puts
# a new version on the wire several times a second without turning the
# replay into a CPU soak.
cat > "$workdir/fleet.json" <<'JSON'
{
  "format": 1,
  "tenants": [
    {"name": "eu", "source": "europe", "cycles": -1, "pace": "150ms", "window": 3, "resolve_every": 4, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "us", "source": "america", "cycles": -1, "pace": "150ms", "window": 3, "resolve_every": 4, "resolve_max_iter": 4000, "resolve_tol": 1e-5}
  ]
}
JSON

say "booting 2-tenant fleet"
"$workdir/tmserve" -fleet "$workdir/fleet.json" -addr "$addr" &
pid=$!
for _ in $(seq 1 120); do
  if curl -sf "$base/healthz" > /dev/null 2>&1; then break; fi
  if ! kill -0 "$pid" 2>/dev/null; then
    say "daemon died during startup"; exit 1
  fi
  sleep 0.25
done

say "waiting for both tenants' first snapshot"
for _ in $(seq 1 120); do
  serving=$(curl -sf "$base/tenants" | jq '[.tenants[] | select(.have_snapshot)] | length')
  [ "$serving" = "2" ] && break
  sleep 0.25
done
serving=$(curl -sf "$base/tenants" | jq '[.tenants[] | select(.have_snapshot)] | length')
if [ "$serving" != "2" ]; then
  say "only $serving/2 tenants have a snapshot"; curl -s "$base/tenants" | jq .; exit 1
fi

say "driving the client mix for 10s"
"$workdir/tmload" -url "$base" -tenants eu,us -clients "${LOADTEST_CLIENTS:-200}" \
  -duration 10s -pattern burst -poll-interval 100ms \
  -sse-frac 0.3 -delta-frac 0.5 -max-p99 "${LOADTEST_MAX_P99:-1s}"

say "PASS"
