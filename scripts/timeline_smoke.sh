#!/usr/bin/env bash
# Timeline smoke test, as run by CI's timeline-smoke job: build tmserve,
# boot a 2-tenant fleet whose tenants are scripted timelines
# (scenario:script:<file>) driving one full failure + restore cycle,
# and gate on zero tenant errors plus a recovered snapshot — every
# tenant finishing on topology epoch 2 (link failed, then restored)
# with a served full re-solve.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pid=""
cleanup() {
  if [ -n "$pid" ]; then
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  fi
  rm -rf "$workdir" 2>/dev/null || true
}
trap cleanup EXIT

addr="127.0.0.1:${TIMELINE_SMOKE_PORT:-17482}"
base="http://$addr"

say() { echo "timeline-smoke: $*"; }

say "building tmserve"
go build -o "$workdir/tmserve" ./cmd/tmserve

# The committed failure+reroute script: 30 intervals, one adjacency
# fails at interval 8 and is restored at 20. Two tenants share the
# script at different seeds; ~20ms pace puts one full cycle around 600ms
# and the whole job well under 10s.
cp examples/timelines/failure_reroute.json "$workdir/failover.json"

cat > "$workdir/fleet.json" <<JSON
{
  "format": 1,
  "tenants": [
    {"name": "tl-a", "source": "scenario:script:$workdir/failover.json", "seed": 1, "cycles": 1, "pace": "20ms", "window": 6, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "tl-b", "source": "scenario:script:$workdir/failover.json", "seed": 2, "cycles": 1, "pace": "20ms", "window": 6, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5}
  ]
}
JSON
names=(tl-a tl-b)

say "booting 2-tenant scripted fleet"
"$workdir/tmserve" -fleet "$workdir/fleet.json" -addr "$addr" &
pid=$!
for _ in $(seq 1 120); do
  if curl -sf "$base/healthz" > /dev/null 2>&1; then break; fi
  if ! kill -0 "$pid" 2>/dev/null; then
    say "daemon died during startup"; exit 1
  fi
  sleep 0.25
done

say "waiting for both timelines to ride through failure + restore"
for _ in $(seq 1 240); do
  done_count=0
  for name in "${names[@]}"; do
    snap=$(curl -sf "$base/t/$name/snapshot" 2>/dev/null) || continue
    interval=$(echo "$snap" | jq -r '.interval // -1')
    epoch=$(echo "$snap" | jq -r '.topology_epoch // 0')
    resolve=$(echo "$snap" | jq -r '.resolve != null')
    if [ "$interval" = "29" ] && [ "$epoch" = "2" ] && [ "$resolve" = "true" ]; then
      done_count=$((done_count + 1))
    fi
  done
  [ "$done_count" = "2" ] && break
  sleep 0.25
done

for name in "${names[@]}"; do
  snap=$(curl -sf "$base/t/$name/snapshot")
  interval=$(echo "$snap" | jq -r .interval)
  epoch=$(echo "$snap" | jq -r .topology_epoch)
  warm=$(echo "$snap" | jq -r .resolve_warm)
  resolve=$(echo "$snap" | jq -r '.resolve != null')
  if [ "$interval" != "29" ] || [ "$epoch" != "2" ] || [ "$resolve" != "true" ]; then
    say "tenant $name never recovered: interval=$interval epoch=$epoch resolve=$resolve"
    curl -s "$base/tenants" | jq .
    exit 1
  fi
  say "tenant $name: interval $interval, epoch $epoch, resolve served (warm=$warm)"
done

# Zero tenant errors: every tenant serving, none failed, fleet healthy.
errors=$(curl -sf "$base/tenants" | jq '[.tenants[] | select(.state == "failed" or (.error // "") != "")] | length')
if [ "$errors" != "0" ]; then
  say "tenants reported errors"; curl -s "$base/tenants" | jq .; exit 1
fi
ok=$(curl -sf "$base/healthz" | jq -r .ok)
if [ "$ok" != "true" ]; then
  say "fleet unhealthy after the cycle"; exit 1
fi

say "PASS"
