#!/usr/bin/env bash
# Timeline smoke test, as run by CI's timeline-smoke job: build tmserve,
# boot a 2-tenant fleet whose tenants are scripted timelines
# (scenario:script:<file>) driving one full failure + restore cycle,
# and gate on zero tenant errors plus a recovered snapshot — every
# tenant finishing on topology epoch 2 (link failed, then restored)
# with a served full re-solve.
set -euo pipefail

cd "$(dirname "$0")/.."
smoke_name="timeline-smoke"
. scripts/lib.sh

addr="127.0.0.1:${TIMELINE_SMOKE_PORT:-17482}"
base="http://$addr"

build_tmserve

# The committed failure+reroute script: 30 intervals, one adjacency
# fails at interval 8 and is restored at 20. Two tenants share the
# script at different seeds; ~20ms pace puts one full cycle around 600ms
# and the whole job well under 10s.
cp examples/timelines/failure_reroute.json "$workdir/failover.json"

cat > "$workdir/fleet.json" <<JSON
{
  "format": 1,
  "tenants": [
    {"name": "tl-a", "source": "scenario:script:$workdir/failover.json", "seed": 1, "cycles": 1, "pace": "20ms", "window": 6, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "tl-b", "source": "scenario:script:$workdir/failover.json", "seed": 2, "cycles": 1, "pace": "20ms", "window": 6, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5}
  ]
}
JSON
names=(tl-a tl-b)

say "booting 2-tenant scripted fleet"
start_tmserve "$base" -fleet "$workdir/fleet.json" -addr "$addr"

tenant_recovered() {
  local snap interval epoch resolve
  snap=$(curl -sf "$base/t/$1/snapshot" 2>/dev/null) || return 1
  interval=$(echo "$snap" | jq -r '.interval // -1')
  epoch=$(echo "$snap" | jq -r '.topology_epoch // 0')
  resolve=$(echo "$snap" | jq -r '.resolve != null')
  [ "$interval" = "29" ] && [ "$epoch" = "2" ] && [ "$resolve" = "true" ]
}
both_recovered() {
  tenant_recovered tl-a && tenant_recovered tl-b
}

say "waiting for both timelines to ride through failure + restore"
wait_for 240 "both timelines recovered" both_recovered || true

for name in "${names[@]}"; do
  snap=$(curl -sf "$base/t/$name/snapshot")
  interval=$(echo "$snap" | jq -r .interval)
  epoch=$(echo "$snap" | jq -r .topology_epoch)
  warm=$(echo "$snap" | jq -r .resolve_warm)
  resolve=$(echo "$snap" | jq -r '.resolve != null')
  if [ "$interval" != "29" ] || [ "$epoch" != "2" ] || [ "$resolve" != "true" ]; then
    say "tenant $name never recovered: interval=$interval epoch=$epoch resolve=$resolve"
    curl -s "$base/tenants" | jq .
    exit 1
  fi
  say "tenant $name: interval $interval, epoch $epoch, resolve served (warm=$warm)"
done

# Zero tenant errors: every tenant serving, none failed, fleet healthy.
errors=$(curl -sf "$base/tenants" | jq '[.tenants[] | select(.state == "failed" or (.error // "") != "")] | length')
if [ "$errors" != "0" ]; then
  say "tenants reported errors"; curl -s "$base/tenants" | jq .; exit 1
fi
ok=$(curl -sf "$base/healthz" | jq -r .ok)
if [ "$ok" != "true" ]; then
  say "fleet unhealthy after the cycle"; exit 1
fi

say "PASS"
