# Shared plumbing for the smoke scripts (fleet_smoke.sh,
# timeline_smoke.sh, cluster_smoke.sh): a temp workdir with an EXIT
# cleanup that reaps every daemon started here, the tmserve build, the
# boot-and-wait-for-healthz dance, and generic polling. Each script
# sets smoke_name, sources this file from the repo root, and stays
# about what it asserts instead of how it boots.

workdir="$(mktemp -d)"
pids=()
last_pid=""

say() { echo "$smoke_name: $*"; }

cleanup() {
  local pid
  for pid in ${pids[@]+"${pids[@]}"}; do
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir" 2>/dev/null || true
}
trap cleanup EXIT

build_tmserve() {
  say "building tmserve"
  go build -o "$workdir/tmserve" ./cmd/tmserve
}

# start_tmserve <base-url> <tmserve args...>: boot one daemon,
# register it for cleanup, and gate on its /healthz answering. The pid
# lands in $last_pid for scripts that kill a specific daemon later.
start_tmserve() {
  local base="$1"
  shift
  "$workdir/tmserve" "$@" &
  last_pid=$!
  pids+=("$last_pid")
  wait_healthz "$base" "$last_pid"
}

# wait_healthz <base-url> [pid]: poll /healthz for up to 30s, failing
# early if the daemon process died.
wait_healthz() {
  local base="$1" pid="${2:-}"
  local _i
  for _i in $(seq 1 120); do
    if curl -sf "$base/healthz" > /dev/null 2>&1; then return 0; fi
    if [ -n "$pid" ] && ! kill -0 "$pid" 2>/dev/null; then
      say "daemon died during startup"
      exit 1
    fi
    sleep 0.25
  done
  say "daemon never came up at $base"
  exit 1
}

# stop_pid <pid>: stop one daemon (the restart or failover victim)
# without tearing the rest of the smoke down.
stop_pid() {
  kill -TERM "$1" 2>/dev/null || true
  wait "$1" 2>/dev/null || true
}

# wait_for <tries> <what> <command...>: poll a predicate command every
# 250ms; returns 1 (after saying so) when it never comes true.
wait_for() {
  local tries="$1" what="$2"
  shift 2
  local _i
  for _i in $(seq 1 "$tries"); do
    if "$@"; then return 0; fi
    sleep 0.25
  done
  say "timed out waiting for $what"
  return 1
}
