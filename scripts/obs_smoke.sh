#!/usr/bin/env bash
# Observability smoke test, as run by CI's obs-smoke job (and `make
# obs-smoke`): build tmserve, boot a 2-tenant fleet — one steady replay
# tenant plus a scripted flash-crowd tenant carrying SLO and
# anomaly-detector config — and gate on the estimation, SLO and serving
# families appearing on a live /metrics/prom scrape; then ride the
# scripted drift spike until the anomaly gauge flips to 1 with /healthz
# reporting degraded and the named drift cause, wait for both to
# recover with the episode counted, and finally run the promtool-style
# exposition validator in internal/obs against the live endpoint.
set -euo pipefail

cd "$(dirname "$0")/.."
smoke_name="obs-smoke"
. scripts/lib.sh

addr="127.0.0.1:${OBS_SMOKE_PORT:-17495}"
base="http://$addr"

build_tmserve

# tl loops a flash-crowd timeline forever: a factor-12 surge on
# London-Paris arrives at interval 8 and retreats at 18. Against a
# window of 6 the surge and its retreat each keep drift elevated for
# several ~150ms intervals per cycle — wide enough for the 250ms polls
# below to observe the anomaly gauge and the degraded healthz — with
# quiet stretches in between for the recovery gate. slo_max_drift sits
# between the diurnal baseline (~0.05) and the spike drift (>0.11), so
# /healthz degrades exactly while the detector is flagging.
cat > "$workdir/flash.json" <<'JSON'
{
  "format": 1,
  "base": "scaled:europe",
  "intervals": 30,
  "events": [
    {"at": 8, "flash_crowd": {"pair": ["London", "Paris"], "factor": 12, "until": 18}}
  ]
}
JSON

cat > "$workdir/fleet.json" <<JSON
{
  "format": 1,
  "tenants": [
    {"name": "eu", "source": "europe", "cycles": -1, "pace": "150ms", "window": 3, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "tl", "source": "scenario:script:$workdir/flash.json", "cycles": -1, "pace": "150ms", "window": 6, "resolve_every": 5, "resolve_max_iter": 4000, "resolve_tol": 1e-5,
     "anomaly_factor": 3, "anomaly_window": 4, "anomaly_min_drift": 0.02, "slo_max_drift": 0.1}
  ]
}
JSON

say "booting 2-tenant fleet"
start_tmserve "$base" -fleet "$workdir/fleet.json" -checkpoint-dir "$workdir/ckpt" -addr "$addr"

scrape() { curl -sf "$base/metrics/prom"; }

# Phase 1: one scrape carries both layers — estimation/SLO families
# from internal/fleet and serving families from internal/serve — for
# both tenants, plus the resolve histograms once the first re-solves
# land and the checkpoint-age gauge once the first saves do.
families=(
  'tm_resolve_duration_seconds_bucket{tenant="eu",le="+Inf"}'
  'tm_resolve_iterations_count{tenant="eu"}'
  'tm_resolves_total{tenant="eu",warm="false"}'
  'tm_resolves_total{tenant="tl",warm='
  'tm_fleet_tenants 2'
  'tm_pool_workers'
  'tm_fleet_resolves_pending'
  'tm_snapshot_version{tenant="tl"}'
  'tm_window_coverage{tenant="eu"}'
  'tm_window_intervals{tenant="tl"} 6'
  'tm_drift{tenant="tl"}'
  'tm_topology_epoch{tenant="eu"} 0'
  'tm_anomaly_active{tenant="tl"}'
  'tm_anomalies_total{tenant="tl"}'
  'tm_checkpoint_age_seconds{tenant="eu"}'
  'tm_tenant_degraded{tenant="tl"}'
  'tm_serving_waiters{tenant="eu"}'
  'tm_serving_subscribers{tenant="tl"}'
  'tm_served_waits_total{tenant="eu"}'
  'tm_snapshot_broadcasts_total{tenant="eu"}'
  'tm_shed_waiters_total{tenant="tl"} 0'
)
families_present() {
  local body
  body=$(scrape) || return 1
  for want in "${families[@]}"; do
    echo "$body" | grep -qF "$want" || return 1
  done
}
say "waiting for every family on /metrics/prom"
if ! wait_for 240 "${#families[@]} families on the scrape" families_present; then
  body=$(scrape) || true
  for want in "${families[@]}"; do
    echo "$body" | grep -qF "$want" || say "missing: $want"
  done
  exit 1
fi
say "all ${#families[@]} families present"

# Phase 2: the flash crowd must flip the anomaly gauge while /healthz
# reports the tenant degraded with its drift cause named — and the
# process must stay HTTP-200 alive throughout (liveness probes gate on
# the status code, not the SLO).
anomaly_flagged() {
  local body hz
  body=$(scrape) || return 1
  echo "$body" | grep -qF 'tm_anomaly_active{tenant="tl"} 1' || return 1
  hz=$(curl -sf "$base/healthz") || return 1
  echo "$hz" | grep -qF '"degraded":true' || return 1
  echo "$hz" | grep -q 'tl: drift' || return 1
}
say "riding the flash crowd"
wait_for 240 "drift spike flipping tm_anomaly_active and /healthz" anomaly_flagged
say "anomaly flagged: tm_anomaly_active=1, /healthz degraded with a drift cause"

# Phase 3: the spike passes — the gauge drops back to 0 with the
# episode counted, the degraded marker clears, and the tenant kept
# serving the whole time.
recovered() {
  local body
  body=$(scrape) || return 1
  echo "$body" | grep -qF 'tm_anomaly_active{tenant="tl"} 0' || return 1
  echo "$body" | grep -qE '^tm_anomalies_total\{tenant="tl"\} [1-9]' || return 1
  ! curl -sf "$base/healthz" | grep -qF '"degraded"'
}
wait_for 240 "anomaly clearing and /healthz recovering" recovered
episodes=$(scrape | grep '^tm_anomalies_total{tenant="tl"}' | awk '{print $2}')
say "recovered: $episodes anomaly episode(s) counted, /healthz clean"

if [ "$(curl -sf "$base/healthz" | jq -r .ok)" != "true" ]; then
  say "/healthz not ok after recovery"
  exit 1
fi

# Phase 4: the live exposition must satisfy the same promtool-style
# validator the unit tests run — content type included.
say "linting the live exposition (internal/obs validator)"
OBS_LINT_URL="$base/metrics/prom" go test ./internal/obs -run 'TestLintLiveURL' -count=1

say "PASS"
