#!/usr/bin/env bash
# Fleet serving smoke test, as run by CI's fleet-smoke job (and `make
# smoke`): build tmserve, boot a 4-tenant fleet in replay mode, read
# /tenants and every /t/{name}/snapshot, stop the daemon, restart it
# against the same -checkpoint-dir with an hour-long pace, and assert
# every restored tenant serves its pre-restart snapshot immediately.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pid=""
cleanup() {
  if [ -n "$pid" ]; then
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  fi
  rm -rf "$workdir" 2>/dev/null || true
}
trap cleanup EXIT

addr="127.0.0.1:${FLEET_SMOKE_PORT:-17481}"
base="http://$addr"

say() { echo "fleet-smoke: $*"; }

say "building tmserve"
go build -o "$workdir/tmserve" ./cmd/tmserve

cat > "$workdir/fleet.json" <<'JSON'
{
  "format": 1,
  "tenants": [
    {"name": "eu", "source": "europe", "cycles": 6, "pace": "20ms", "window": 3, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "us", "source": "america", "cycles": 6, "pace": "20ms", "window": 3, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "lab-noisy", "source": "scenario:noisy:europe:0.05", "cycles": 6, "pace": "20ms", "window": 3, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "lab-16", "source": "scenario:scaled:16", "cycles": 6, "pace": "20ms", "window": 3, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5}
  ]
}
JSON
names=(eu us lab-noisy lab-16)

start_daemon() {
  "$workdir/tmserve" -fleet "$workdir/fleet.json" -checkpoint-dir "$workdir/ckpt" -addr "$addr" &
  pid=$!
  for _ in $(seq 1 120); do
    if curl -sf "$base/healthz" > /dev/null 2>&1; then return 0; fi
    if ! kill -0 "$pid" 2>/dev/null; then
      say "daemon died during startup"; exit 1
    fi
    sleep 0.25
  done
  say "daemon never came up on $addr"; exit 1
}

say "booting 4-tenant fleet"
start_daemon

say "waiting for every tenant to finish its replay"
for _ in $(seq 1 240); do
  serving=$(curl -sf "$base/tenants" | jq '[.tenants[] | select(.state == "serving" and .have_snapshot)] | length')
  [ "$serving" = "4" ] && break
  sleep 0.25
done
serving=$(curl -sf "$base/tenants" | jq '[.tenants[] | select(.state == "serving" and .have_snapshot)] | length')
if [ "$serving" != "4" ]; then
  say "only $serving/4 tenants serving"; curl -s "$base/tenants" | jq .; exit 1
fi

declare -A versions intervals
for name in "${names[@]}"; do
  snap=$(curl -sf "$base/t/$name/snapshot")
  versions[$name]=$(echo "$snap" | jq -r .version)
  intervals[$name]=$(echo "$snap" | jq -r .interval)
  if [ "${intervals[$name]}" != "5" ]; then
    say "tenant $name at interval ${intervals[$name]}, want 5"; exit 1
  fi
  say "tenant $name: version ${versions[$name]}, interval ${intervals[$name]}"
done

say "stopping the daemon"
kill -TERM "$pid"
wait "$pid" || true
pid=""

for name in "${names[@]}"; do
  if [ ! -f "$workdir/ckpt/$name.ckpt" ]; then
    say "tenant $name left no checkpoint"; exit 1
  fi
done

# The restarted daemon replays at an hour per interval: anything it
# serves within this test's lifetime can only come from the restored
# checkpoints.
jq '.tenants[].pace = "1h"' "$workdir/fleet.json" > "$workdir/fleet-slow.json"
mv "$workdir/fleet-slow.json" "$workdir/fleet.json"

say "restarting against the same -checkpoint-dir"
start_daemon

for name in "${names[@]}"; do
  # First request, no settling loop: restored snapshots must serve
  # immediately.
  snap=$(curl -sf "$base/t/$name/snapshot") || { say "tenant $name dark after restart"; exit 1; }
  version=$(echo "$snap" | jq -r .version)
  interval=$(echo "$snap" | jq -r .interval)
  restored=$(curl -sf "$base/tenants" | jq -r ".tenants[] | select(.name == \"$name\") | .restored")
  if [ "$interval" != "${intervals[$name]}" ] || [ "$version" -lt "${versions[$name]}" ]; then
    say "tenant $name restored to version $version interval $interval, want >= ${versions[$name]} / ${intervals[$name]}"
    exit 1
  fi
  if [ "$restored" != "true" ]; then
    say "tenant $name does not report restored=true"; exit 1
  fi
  say "tenant $name: restored version $version, interval $interval"
done

say "PASS"
