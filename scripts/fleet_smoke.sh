#!/usr/bin/env bash
# Fleet serving smoke test, as run by CI's fleet-smoke job (and `make
# smoke`): build tmserve, boot a 4-tenant fleet in replay mode, read
# /tenants and every /t/{name}/snapshot, stop the daemon, restart it
# against the same -checkpoint-dir with an hour-long pace, and assert
# every restored tenant serves its pre-restart snapshot immediately.
set -euo pipefail

cd "$(dirname "$0")/.."
smoke_name="fleet-smoke"
. scripts/lib.sh

addr="127.0.0.1:${FLEET_SMOKE_PORT:-17481}"
base="http://$addr"

build_tmserve

cat > "$workdir/fleet.json" <<'JSON'
{
  "format": 1,
  "tenants": [
    {"name": "eu", "source": "europe", "cycles": 6, "pace": "20ms", "window": 3, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "us", "source": "america", "cycles": 6, "pace": "20ms", "window": 3, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "lab-noisy", "source": "scenario:noisy:europe:0.05", "cycles": 6, "pace": "20ms", "window": 3, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "lab-16", "source": "scenario:scaled:16", "cycles": 6, "pace": "20ms", "window": 3, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5}
  ]
}
JSON
names=(eu us lab-noisy lab-16)

say "booting 4-tenant fleet"
start_tmserve "$base" -fleet "$workdir/fleet.json" -checkpoint-dir "$workdir/ckpt" -addr "$addr"
daemon_pid="$last_pid"

all_serving() {
  [ "$(curl -sf "$base/tenants" | jq '[.tenants[] | select(.state == "serving" and .have_snapshot)] | length')" = "4" ]
}
say "waiting for every tenant to finish its replay"
if ! wait_for 240 "4/4 tenants serving" all_serving; then
  curl -s "$base/tenants" | jq .
  exit 1
fi

declare -A versions intervals
for name in "${names[@]}"; do
  snap=$(curl -sf "$base/t/$name/snapshot")
  versions[$name]=$(echo "$snap" | jq -r .version)
  intervals[$name]=$(echo "$snap" | jq -r .interval)
  if [ "${intervals[$name]}" != "5" ]; then
    say "tenant $name at interval ${intervals[$name]}, want 5"; exit 1
  fi
  say "tenant $name: version ${versions[$name]}, interval ${intervals[$name]}"
done

say "stopping the daemon"
stop_pid "$daemon_pid"

for name in "${names[@]}"; do
  if [ ! -f "$workdir/ckpt/$name.ckpt" ]; then
    say "tenant $name left no checkpoint"; exit 1
  fi
done

# The restarted daemon replays at an hour per interval: anything it
# serves within this test's lifetime can only come from the restored
# checkpoints.
jq '.tenants[].pace = "1h"' "$workdir/fleet.json" > "$workdir/fleet-slow.json"
mv "$workdir/fleet-slow.json" "$workdir/fleet.json"

say "restarting against the same -checkpoint-dir"
start_tmserve "$base" -fleet "$workdir/fleet.json" -checkpoint-dir "$workdir/ckpt" -addr "$addr"

for name in "${names[@]}"; do
  # First request, no settling loop: restored snapshots must serve
  # immediately.
  snap=$(curl -sf "$base/t/$name/snapshot") || { say "tenant $name dark after restart"; exit 1; }
  version=$(echo "$snap" | jq -r .version)
  interval=$(echo "$snap" | jq -r .interval)
  restored=$(curl -sf "$base/tenants" | jq -r ".tenants[] | select(.name == \"$name\") | .restored")
  if [ "$interval" != "${intervals[$name]}" ] || [ "$version" -lt "${versions[$name]}" ]; then
    say "tenant $name restored to version $version interval $interval, want >= ${versions[$name]} / ${intervals[$name]}"
    exit 1
  fi
  if [ "$restored" != "true" ]; then
    say "tenant $name does not report restored=true"; exit 1
  fi
  say "tenant $name: restored version $version, interval $interval"
done

say "PASS"
