#!/usr/bin/env bash
# Cluster smoke test, as run by CI's cluster-smoke job (and `make
# cluster-smoke`): build tmserve, boot three member nodes plus a
# coordinator from one cluster config, read every tenant through the
# coordinator (proxied, X-Tenant-Node naming the owner), then kill the
# node owning the scripted-timeline tenant after its topology swap and
# gate on the standby taking over via checkpoint handoff — serving the
# migrated tenant warm, topology epoch preserved, with the coordinator
# counters showing the probe failures and proxied reads.
set -euo pipefail

cd "$(dirname "$0")/.."
smoke_name="cluster-smoke"
. scripts/lib.sh

port="${CLUSTER_SMOKE_PORT:-17490}"
coord="http://127.0.0.1:$port"
n1_addr="127.0.0.1:$((port + 1))"
n2_addr="127.0.0.1:$((port + 2))"
n3_addr="127.0.0.1:$((port + 3))"

build_tmserve

# tl runs the committed failure+reroute script (30 intervals, link
# fails at 8, restored at 20) on n3, with n1 as its pinned warm
# standby; eu and us replay endlessly so the cluster stays busy.
cp examples/timelines/failure_reroute.json "$workdir/failover.json"

cat > "$workdir/cluster.json" <<JSON
{
  "format": 1,
  "tenants": [
    {"name": "eu", "source": "europe", "cycles": -1, "pace": "100ms", "window": 3, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "us", "source": "america", "cycles": -1, "pace": "100ms", "window": 3, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5},
    {"name": "tl", "source": "scenario:script:$workdir/failover.json", "cycles": 1, "pace": "50ms", "window": 6, "resolve_every": 3, "resolve_max_iter": 4000, "resolve_tol": 1e-5}
  ],
  "nodes": [
    {"name": "n1", "addr": "$n1_addr"},
    {"name": "n2", "addr": "$n2_addr"},
    {"name": "n3", "addr": "$n3_addr"}
  ],
  "placement": {"eu": "n1", "us": "n2", "tl": "n3"},
  "standbys": {"tl": "n1"},
  "probe_every": "250ms",
  "probe_failures": 2,
  "sync_every": "250ms"
}
JSON

say "booting 3 member nodes"
start_tmserve "http://$n1_addr" -cluster "$workdir/cluster.json" -node n1 -checkpoint-dir "$workdir/ckpt-n1" -addr "$n1_addr"
start_tmserve "http://$n2_addr" -cluster "$workdir/cluster.json" -node n2 -checkpoint-dir "$workdir/ckpt-n2" -addr "$n2_addr"
start_tmserve "http://$n3_addr" -cluster "$workdir/cluster.json" -node n3 -checkpoint-dir "$workdir/ckpt-n3" -addr "$n3_addr"
n3_pid="$last_pid"

say "booting the coordinator"
start_tmserve "$coord" -cluster "$workdir/cluster.json" -coordinator -addr "127.0.0.1:$port"

cluster_healthy() {
  [ "$(curl -sf "$coord/healthz" | jq -r .ok)" = "true" ]
}
wait_for 120 "coordinator reporting every node healthy" cluster_healthy

# Every tenant must answer through the coordinator, each proxied to —
# and stamped by — its owning node.
say "reading every tenant through the coordinator"
for pair in eu:n1 us:n2 tl:n3; do
  name="${pair%%:*}" owner="${pair##*:}"
  tenant_up() {
    curl -sf -D "$workdir/hdr" "$coord/v1/t/$name/snapshot" > /dev/null 2>&1 \
      && grep -qi "^x-tenant-node: *$owner" "$workdir/hdr"
  }
  wait_for 240 "tenant $name serving via $owner" tenant_up
  say "tenant $name: served via $owner"
done

listed=$(curl -sf "$coord/v1/tenants" | jq '.tenants | length')
if [ "$listed" != "3" ]; then
  say "aggregated listing holds $listed tenants, want 3"
  curl -s "$coord/v1/tenants" | jq .
  exit 1
fi

# Phase 2: ride the scripted failure, and make sure the standby's
# checkpoint sync has captured the post-swap state before the kill.
tl_post_swap() {
  local e
  e=$(curl -sf "$coord/v1/t/tl/snapshot" | jq -r '.topology_epoch // 0') || return 1
  [ "$e" -ge 1 ]
}
say "waiting for tl's scripted link failure (epoch >= 1)"
wait_for 240 "tl past its topology swap" tl_post_swap

standby_synced() {
  [ -f "$workdir/ckpt-n1/tl.ckpt" ] || return 1
  [ "$(jq -r '.topology_epoch // 0' "$workdir/ckpt-n1/tl.ckpt" 2>/dev/null)" -ge 1 ] 2>/dev/null || return 1
  [ "$(jq -r '.snapshot != null' "$workdir/ckpt-n1/tl.ckpt")" = "true" ]
}
say "waiting for n1's standby checkpoint of tl to sync past the swap"
wait_for 240 "standby checkpoint past the swap" standby_synced
synced_epoch=$(jq -r .topology_epoch "$workdir/ckpt-n1/tl.ckpt")

say "killing n3 (tl's owner)"
stop_pid "$n3_pid"

# Phase 3: probes mark n3 down, the coordinator promotes n1, and tl
# serves from its synced checkpoint — warm, epoch intact.
tl_on_n1() {
  curl -sf -D "$workdir/hdr" -o "$workdir/tl-snap.json" "$coord/v1/t/tl/snapshot" 2>/dev/null \
    && grep -qi '^x-tenant-node: *n1' "$workdir/hdr"
}
say "waiting for the standby to take over"
wait_for 240 "tl served by standby n1" tl_on_n1

epoch=$(jq -r '.topology_epoch // 0' "$workdir/tl-snap.json")
if [ "$epoch" -lt "$synced_epoch" ]; then
  say "handoff lost the topology epoch: serving $epoch, standby checkpoint had $synced_epoch"
  exit 1
fi
restored=$(curl -sf "$coord/v1/tenants" | jq -r '.tenants[] | select(.name == "tl" and .node == "n1") | .restored')
if [ "$restored" != "true" ]; then
  say "promoted tenant does not report restored=true"
  curl -s "$coord/v1/tenants" | jq .
  exit 1
fi
say "tl migrated to n1: restored=true, epoch $epoch (standby had $synced_epoch)"

# The coordinator's observability must show what just happened: n3
# down with probe failures counted, and proxied reads on the survivors.
report=$(curl -sf "$coord/v1/tenants")
n3_healthy=$(echo "$report" | jq -r '.nodes[] | select(.name == "n3") | .healthy')
n3_failures=$(echo "$report" | jq -r '.nodes[] | select(.name == "n3") | .probe_failures')
proxied=$(echo "$report" | jq '[.nodes[].proxied] | add')
if [ "$n3_healthy" != "false" ] || [ "$n3_failures" -lt 1 ]; then
  say "node report does not show n3 down (healthy=$n3_healthy, probe_failures=$n3_failures)"
  exit 1
fi
if [ "$proxied" -lt 1 ]; then
  say "proxied counter is $proxied after all those reads"
  exit 1
fi
say "node report: n3 down after $n3_failures probe failures, $proxied reads proxied"

# The coordinator's Prometheus scrape must tell the same story: the
# dead node's gauge at 0 with its probe failures counted, and proxied
# reads accumulated on the per-node routing counters.
prom=$(curl -sf "$coord/metrics/prom")
if ! echo "$prom" | grep -qF 'tm_node_healthy{node="n3"} 0'; then
  say "coordinator scrape does not show n3 down"
  echo "$prom" | grep '^tm_node_healthy'
  exit 1
fi
if ! echo "$prom" | grep -qE '^tm_node_probe_failures_total\{node="n3"\} [1-9]'; then
  say "coordinator scrape shows no probe failures for n3"
  echo "$prom" | grep '^tm_node_probe_failures_total'
  exit 1
fi
if ! echo "$prom" | awk '/^tm_node_proxied_total/ { s += $2 } END { exit !(s >= 1) }'; then
  say "coordinator scrape counts no proxied reads"
  echo "$prom" | grep '^tm_node_proxied_total'
  exit 1
fi
say "coordinator /metrics/prom: n3 down, probe failures and proxied reads counted"

say "PASS"
