// Streaming: run the continuous estimation engine over a replayed
// collection and watch the traffic matrix evolve — the online counterpart
// of the batch experiments. Every 5-minute interval the engine folds the
// newly collected rates into its sliding window and refreshes the cheap
// incremental gravity estimate (eq. 5); every third interval it schedules
// a full entropy re-solve (eq. 6) on a dedicated latest-wins worker. The
// same engine powers the tmserve daemon, which serves these snapshots
// over HTTP/JSON instead of printing them.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/collector"
	"repro/internal/netsim"
	"repro/internal/stream"
)

func main() {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := stream.New(sc.Rt, stream.Config{
		Window:       6, // half an hour of 5-minute intervals
		ResolveEvery: 3,
		Method:       stream.MethodEntropy,
		Reg:          1000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A store fed by a deterministic replay stands in for the live
	// UDP/TCP deployment (swap in collector.NewDeployment for sockets).
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	engineDone := make(chan struct{})
	go func() {
		defer close(engineDone)
		_ = engine.Run(ctx, store)
	}()

	// Pace the replay so each 5-minute interval takes 50 ms of wall time;
	// with pace 0 the whole day lands at once and the version waits below
	// would skip straight to the final snapshot.
	const cycles = 12
	replayDone := make(chan error, 1)
	go func() { replayDone <- collector.Replay(ctx, store, sc.Series, cycles, 50*time.Millisecond) }()

	// Follow the evolving matrix with the versioned snapshot API: wait
	// for each publication in turn and print how the estimates track the
	// collected (directly measured) window mean.
	fmt.Printf("%-8s %-9s %-7s %-12s %s\n", "version", "interval", "window", "gravity MRE", "entropy re-solve")
	for v := uint64(1); ; v++ {
		snap, err := engine.WaitVersion(ctx, v)
		if err != nil {
			log.Fatal(err)
		}
		v = snap.Version
		resolve := "-"
		if snap.Resolve != nil {
			start := "cold"
			if snap.ResolveWarm {
				start = "warm" // started from the previous published estimate
			}
			resolve = fmt.Sprintf("MRE %.3f @ interval %d (%.0f ms, %d iters, %s)",
				snap.ResolveMRE, snap.ResolveInterval, snap.ResolveDuration.Seconds()*1000,
				snap.ResolveIterations, start)
		}
		fmt.Printf("%-8d %-9d %-7d %-12.3f %s\n", snap.Version, snap.Interval, snap.Window, snap.GravityMRE, resolve)
		if snap.Interval == cycles-1 && snap.Resolve != nil {
			break
		}
	}
	if err := <-replayDone; err != nil {
		log.Fatal(err)
	}
	cancel()
	<-engineDone

	final, _ := engine.Latest()
	fmt.Printf("\nfinal snapshot v%d: %d demands over a %d-interval window, "+
		"gravity MRE %.3f vs the collected mean, entropy MRE %.3f\n",
		final.Version, len(final.Gravity), final.Window, final.GravityMRE, final.ResolveMRE)
}
