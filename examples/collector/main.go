// Collector: run the live measurement pipeline over loopback sockets and
// feed the *collected* (rather than ideal) traffic matrix into estimation —
// the full operational loop of the paper's §5.1: SNMP-style UDP polling,
// rate adjustment, TCP upload to a central store, then tomography on the
// resulting link loads.
package main

import (
	"fmt"
	"log"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/netsim"
)

func main() {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		log.Fatal(err)
	}

	// Collect 6 five-minute intervals at 3000x real time with 2% UDP loss
	// and three distributed pollers.
	d := collector.NewDeployment(sc.Net, sc.Series, collector.DeploymentConfig{
		Pollers:         3,
		DropProb:        0.02,
		MinutesPerMilli: 0.1,
		StepMinutes:     sc.Series.Cfg.StepMinutes,
		Seed:            1,
	})
	const cycles = 6
	if err := d.Run(cycles); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d rate records\n", d.Store.Records())

	// Use the last fully covered interval as "the measured traffic matrix",
	// compute its link loads, and pretend we only had the loads: estimate
	// the matrix back via entropy tomography.
	var bestIv, bestCov int
	for _, iv := range d.Store.Intervals() {
		if _, covered, _ := d.Store.Matrix(iv); covered >= bestCov {
			bestIv, bestCov = iv, covered
		}
	}
	collected, covered, _ := d.Store.Matrix(bestIv)
	fmt.Printf("interval %d: %d/%d LSPs covered by the pollers\n",
		bestIv, covered, sc.Net.NumPairs())

	loads := sc.Rt.LinkLoads(collected)
	inst, err := core.NewInstance(sc.Rt, loads)
	if err != nil {
		log.Fatal(err)
	}
	estimate, err := core.Entropy(inst, core.Gravity(inst), 1000)
	if err != nil {
		log.Fatal(err)
	}

	// Score against the true generating demands of that interval: the
	// residual error combines collection noise and tomography error.
	truth := sc.Series.Demands[bestIv]
	threshold := core.ShareThreshold(truth, 0.9)
	fmt.Printf("estimation MRE vs ground truth:        %.3f\n",
		core.MRE(estimate, truth, threshold))
	fmt.Printf("collection-only MRE (no tomography):   %.3f\n",
		core.MRE(collected, truth, threshold))
}
