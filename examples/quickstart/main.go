// Quickstart: build the European backbone scenario, estimate its traffic
// matrix from link loads with the entropy (tomogravity) method, and score
// the estimate the way the paper does.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netsim"
)

func main() {
	// 1. A synthetic stand-in for the paper's measured data set: the
	//    12-PoP European subnetwork with a calibrated 24-hour demand series.
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d PoPs, %d demands, %d interior links\n",
		sc.Net.NumPoPs(), sc.Net.NumPairs(), sc.Net.InteriorLinks())

	// 2. The busy-hour snapshot: true demands (ground truth) and the link
	//    loads t = R·s an operator would actually measure via SNMP.
	truth, inst, threshold, err := sc.Snapshot(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("busy-hour total traffic: %.0f Mbps\n", inst.TotalTraffic())

	// 3. A gravity prior from the access-link loads only, then the
	//    entropy-regularized estimate (eq. 6 of the paper).
	prior := core.Gravity(inst)
	estimate, err := core.Entropy(inst, prior, 1000)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Score with the paper's MRE (eq. 8) over the demands that carry
	//    90% of the traffic.
	fmt.Printf("gravity prior MRE:   %.3f\n", core.MRE(prior, truth, threshold))
	fmt.Printf("entropy estimate MRE: %.3f\n", core.MRE(estimate, truth, threshold))
	fmt.Printf("rank correlation:     %.3f\n", core.RankCorrelation(estimate, truth))
}
