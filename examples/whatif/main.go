// Whatif: measurement planning à la §5.3.6 — how many demands must be
// measured directly (e.g. with per-LSP accounting) before the entropy
// estimate of the rest becomes excellent, comparing the paper's greedy
// exhaustive search with the practical largest-demands-first rule.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netsim"
)

func main() {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		log.Fatal(err)
	}
	truth, inst, threshold, err := sc.Snapshot(50)
	if err != nil {
		log.Fatal(err)
	}
	prior := core.Gravity(inst)

	const steps = 8
	greedy, greedyOrder, err := core.DirectMeasurementCurve(
		inst, truth, prior, 1000, threshold, steps, core.GreedyMRE)
	if err != nil {
		log.Fatal(err)
	}
	largest, _, err := core.DirectMeasurementCurve(
		inst, truth, prior, 1000, threshold, steps, core.LargestDemand)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("demands measured | greedy MRE | largest-first MRE")
	for i := 0; i <= steps; i++ {
		fmt.Printf("%16d | %10.4f | %17.4f\n", i, greedy[i], largest[i])
	}
	fmt.Println("\ngreedy picked, in order:")
	for i, p := range greedyOrder {
		src, dst := sc.Net.PairFromIndex(p)
		fmt.Printf("  %d. %s -> %s (%.0f Mbps)\n",
			i+1, sc.Net.PoPs[src].Name, sc.Net.PoPs[dst].Name, truth[p])
	}
	fmt.Println("\n(the paper: 6 greedy measurements cut the European MRE from 11% to <1%;")
	fmt.Println(" measuring by size alone needs 19 demands for the same effect)")
}
