// Backbone: the paper's headline comparison (Table 2) on both subnetworks —
// gravity and worst-case-bound priors, the regularized estimators on top of
// them, and the time-series methods.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/netsim"
)

func main() {
	for _, region := range []string{"europe", "america"} {
		if err := run(region); err != nil {
			log.Fatalf("%s: %v", region, err)
		}
	}
}

func run(region string) error {
	var (
		sc  *netsim.Scenario
		err error
	)
	if region == "europe" {
		sc, err = netsim.BuildEurope(1)
	} else {
		sc, err = netsim.BuildAmerica(1)
	}
	if err != nil {
		return err
	}
	truth, inst, threshold, err := sc.Snapshot(50)
	if err != nil {
		return err
	}
	start := sc.BusyWindow(50)
	score := func(est linalg.Vector) float64 { return core.MRE(est, truth, threshold) }

	fmt.Printf("=== %s: %d PoPs, %d demands, %d interior links ===\n",
		region, sc.Net.NumPoPs(), sc.Net.NumPairs(), sc.Net.InteriorLinks())

	gravity := core.Gravity(inst)
	fmt.Printf("%-28s MRE %.3f\n", "simple gravity prior", score(gravity))

	bounds, err := core.WorstCaseBounds(inst)
	if err != nil {
		return err
	}
	wcb := bounds.Midpoint()
	fmt.Printf("%-28s MRE %.3f\n", "worst-case-bound prior", score(wcb))

	entropy, err := core.Entropy(inst, gravity, 1000)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s MRE %.3f\n", "entropy w. gravity prior", score(entropy))

	bayes, err := core.Bayesian(inst, gravity, 1000)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s MRE %.3f\n", "bayes w. gravity prior", score(bayes))

	bayesWCB, err := core.Bayesian(inst, wcb, 1000)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s MRE %.3f\n", "bayes w. WCB prior", score(bayesWCB))

	fan, err := core.EstimateFanouts(sc.Rt, sc.LoadSeries(start, 20), core.DefaultFanoutConfig())
	if err != nil {
		return err
	}
	mean20 := sc.Series.MeanDemand(start, 20)
	fmt.Printf("%-28s MRE %.3f\n", "fanout (window 20)",
		core.MRE(fan.MeanDemand, mean20, core.ShareThreshold(mean20, 0.9)))

	vardi, err := core.Vardi(sc.Rt, sc.LoadSeries(start, 50), core.DefaultVardiConfig())
	if err != nil {
		return err
	}
	fmt.Printf("%-28s MRE %.3f\n\n", "vardi (sigma^-2=0.01, K=50)", score(vardi))
	return nil
}
