// Fleet: shard four subnetwork estimation engines behind one process —
// the paper's two backbones plus two scenario-lab instances — with
// every tenant's full re-solves multiplexed onto one shared worker pool
// under round-robin fairness. Each tenant replays its own measurement
// stream, keeps its own sliding window and publishes its own versioned
// snapshots; the fleet only shares compute. The same layer powers
// `tmserve -fleet`, which serves these snapshots over HTTP
// (/tenants, /t/{name}/snapshot) instead of printing them.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/fleet"
	"repro/internal/runner"
)

func main() {
	const cycles = 8
	specs := []fleet.TenantSpec{
		{Name: "europe", Source: "europe", Method: "entropy"},
		{Name: "america", Source: "america", Method: "vardi"},
		{Name: "lab-40", Source: "scenario:scaled:40", Method: "entropy"},
		{Name: "lab-noisy", Source: "scenario:noisy:europe:0.05", Method: "fanout"},
	}

	f := fleet.New(runner.NewPool(0), fleet.Options{})
	for i := range specs {
		specs[i].Cycles = cycles
		specs[i].Pace = "0"
		specs[i].Window = 4
		specs[i].ResolveEvery = 4
		specs[i].ResolveMaxIter = 4000
		specs[i].ResolveTol = 1e-5
		if _, err := f.Add(specs[i]); err != nil {
			log.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	// Wait until every tenant has consumed its replay and published the
	// re-solve of its final window, then stop the fleet.
	deadline := time.Now().Add(2 * time.Minute)
	for _, t := range f.Tenants() {
		for {
			snap, ok := t.Engine().Latest()
			if ok && snap.Interval == cycles-1 && snap.ResolveInterval == cycles-1 && snap.Resolve != nil {
				break
			}
			if time.Now().After(deadline) {
				log.Fatalf("tenant %s never quiesced", t.Name())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	cancel()
	<-done

	fmt.Printf("fleet of %d tenants, %d shared re-solve workers\n\n", len(f.Tenants()), f.Pool().Workers())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "tenant\tPoPs\tdemands\tmethod\tversion\tgravity MRE\tre-solve MRE\titers")
	for _, t := range f.Tenants() {
		snap, _ := t.Engine().Latest()
		st := t.Status()
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%d\t%.3f\t%.3f\t%d\n",
			st.Name, st.PoPs, st.Pairs, snap.ResolveMethod, snap.Version,
			snap.GravityMRE, snap.ResolveMRE, snap.ResolveIterations)
	}
	w.Flush()
}
