// Benchmarks regenerating every table and figure of the paper's evaluation
// section, plus ablations of the design choices called out in DESIGN.md.
// Each BenchmarkFigXX/BenchmarkTableX runs the corresponding experiment
// driver end to end on the synthetic scenarios; the rendered output
// (identical to cmd/tmbench's) is emitted once per benchmark via b.Log.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/topology"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	if testing.Short() {
		b.Skip("experiment benchmarks are slow; skipping in -short mode")
	}
	suiteOnce.Do(func() { suite, suiteErr = experiments.NewSuite(1) })
	if suiteErr != nil {
		b.Fatalf("NewSuite: %v", suiteErr)
	}
	return suite
}

// runDriver benchmarks one experiment driver and logs its report once.
func runDriver(b *testing.B, id string) {
	s := benchSuite(b)
	d, ok := experiments.DriverByID(id)
	if !ok {
		b.Fatalf("unknown driver %s", id)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		rep, err := d.RunOn(ctx, s)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = rep
	}
	b.StopTimer()
	var sb strings.Builder
	if err := last.Render(&sb); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + sb.String())
}

// benchFullSuite runs every experiment through the concurrent engine at
// the given pool size, so serial (1) and parallel (GOMAXPROCS) wall
// times can be compared directly:
//
//	go test -bench 'FullSuite' -benchtime 1x .
func benchFullSuite(b *testing.B, workers int) {
	if testing.Short() {
		b.Skip("full-suite benchmark is slow; skipping in -short mode")
	}
	s, err := experiments.NewSuiteWithPool(1, runner.NewPool(workers))
	if err != nil {
		b.Fatalf("NewSuiteWithPool: %v", err)
	}
	drivers := experiments.AllDrivers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunAll(context.Background(), s, drivers, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.Err != nil {
				b.Fatalf("%s: %v", res.ID, res.Err)
			}
		}
	}
}

func BenchmarkFullSuiteSerial(b *testing.B)   { benchFullSuite(b, 1) }
func BenchmarkFullSuiteParallel(b *testing.B) { benchFullSuite(b, 0) }

func BenchmarkFig01TotalTraffic(b *testing.B)        { runDriver(b, "fig1") }
func BenchmarkFig02CumulativeDemand(b *testing.B)    { runDriver(b, "fig2") }
func BenchmarkFig03SpatialDistribution(b *testing.B) { runDriver(b, "fig3") }
func BenchmarkFig04DemandTimeSeries(b *testing.B)    { runDriver(b, "fig4") }
func BenchmarkFig05FanoutStability(b *testing.B)     { runDriver(b, "fig5") }
func BenchmarkFig06MeanVariance(b *testing.B)        { runDriver(b, "fig6") }
func BenchmarkFig07GravityScatter(b *testing.B)      { runDriver(b, "fig7") }
func BenchmarkFig08WorstCaseBounds(b *testing.B)     { runDriver(b, "fig8") }
func BenchmarkFig09WCBPrior(b *testing.B)            { runDriver(b, "fig9") }
func BenchmarkFig10FanoutWindows(b *testing.B)       { runDriver(b, "fig10") }
func BenchmarkFig11FanoutMRE(b *testing.B)           { runDriver(b, "fig11") }
func BenchmarkTable1Vardi(b *testing.B)              { runDriver(b, "table1") }
func BenchmarkFig12VardiSynthetic(b *testing.B)      { runDriver(b, "fig12") }
func BenchmarkFig13RegularizationSweep(b *testing.B) { runDriver(b, "fig13") }
func BenchmarkFig14RegularizedScatter(b *testing.B)  { runDriver(b, "fig14") }
func BenchmarkFig15PriorComparison(b *testing.B)     { runDriver(b, "fig15") }
func BenchmarkFig16DirectMeasurement(b *testing.B)   { runDriver(b, "fig16") }
func BenchmarkTable2Summary(b *testing.B)            { runDriver(b, "table2") }

// Extension experiments (paper §6 future work; see EXPERIMENTS.md).
func BenchmarkExt1NoiseSensitivity(b *testing.B)   { runDriver(b, "ext1") }
func BenchmarkExt2UnevaluatedMethods(b *testing.B) { runDriver(b, "ext2") }
func BenchmarkExt3ECMPMismatch(b *testing.B)       { runDriver(b, "ext3") }
func BenchmarkExt4TrafficEngineering(b *testing.B) { runDriver(b, "ext4") }

// --- Ablations (design choices called out in DESIGN.md §5) ---

// BenchmarkAblationBayesSolvers compares the exact Lawson-Hanson NNLS
// solution of the MAP problem (eq. 7) with the FISTA solve the library uses
// by default, on the European network.
func BenchmarkAblationBayesSolvers(b *testing.B) {
	s := benchSuite(b)
	prior := core.Gravity(s.InstEU)
	b.Run("fista", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Bayesian(s.InstEU, prior, 1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nnls-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BayesianNNLS(s.InstEU, prior, 1000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationEntropySolvers compares the forward-backward KL-prox
// solver of eq. (6) against Krupp's multiplicative iterative scaling, which
// solves the consistency-constrained limit of the same objective.
func BenchmarkAblationEntropySolvers(b *testing.B) {
	s := benchSuite(b)
	prior := core.Gravity(s.InstEU)
	b.Run("forward-backward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Entropy(s.InstEU, prior, 1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("iterative-scaling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.KruithofGeneral(s.InstEU, prior, 3000)
		}
	})
}

// BenchmarkAblationWCBWarmStart measures what sharing one warm-started
// simplex instance across the 2P worst-case-bound LPs saves versus cold
// starts.
func BenchmarkAblationWCBWarmStart(b *testing.B) {
	s := benchSuite(b)
	b.Run("warm", func(b *testing.B) {
		var pivots int
		for i := 0; i < b.N; i++ {
			bounds, err := core.WorstCaseBounds(s.InstEU)
			if err != nil {
				b.Fatal(err)
			}
			pivots = bounds.Pivots
		}
		b.ReportMetric(float64(pivots), "pivots")
	})
	b.Run("cold", func(b *testing.B) {
		var pivots int
		for i := 0; i < b.N; i++ {
			bounds, err := core.WorstCaseBoundsCold(s.InstEU)
			if err != nil {
				b.Fatal(err)
			}
			pivots = bounds.Pivots
		}
		b.ReportMetric(float64(pivots), "pivots")
	})
}

// BenchmarkAblationFanoutConstraint compares the paper's simplex-constrained
// fanout estimator with the unconstrained least-squares variant.
func BenchmarkAblationFanoutConstraint(b *testing.B) {
	s := benchSuite(b)
	start := s.EU.BusyWindow(experiments.BusyWindowSamples)
	loads := s.EU.LoadSeries(start, 10)
	mean := s.EU.Series.MeanDemand(start, 10)
	th := core.ShareThreshold(mean, 0.9)
	for _, tc := range []struct {
		name          string
		unconstrained bool
	}{{"simplex", false}, {"unconstrained", true}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := core.DefaultFanoutConfig()
			cfg.Unconstrained = tc.unconstrained
			var mre float64
			for i := 0; i < b.N; i++ {
				est, err := core.EstimateFanouts(s.EU.Rt, loads, cfg)
				if err != nil {
					b.Fatal(err)
				}
				mre = core.MRE(est.MeanDemand, mean, th)
			}
			b.ReportMetric(mre, "MRE")
		})
	}
}

// BenchmarkAblationGreedyVsLargest compares the two direct-measurement
// selection strategies of §5.3.6 at equal budget on the European network.
func BenchmarkAblationGreedyVsLargest(b *testing.B) {
	s := benchSuite(b)
	prior := core.Gravity(s.InstEU)
	for _, tc := range []struct {
		name     string
		strategy core.SelectionStrategy
	}{{"greedy", core.GreedyMRE}, {"largest", core.LargestDemand}} {
		b.Run(tc.name, func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				curve, _, err := core.DirectMeasurementCurve(
					s.InstEU, s.TruthEU, prior, 1000, s.ThreshEU, 6, tc.strategy)
				if err != nil {
					b.Fatal(err)
				}
				final = curve[len(curve)-1]
			}
			b.ReportMetric(final, "final-MRE")
		})
	}
}

// --- Scale benchmarks (the scenario lab's 100-PoP trajectory) ---
//
// These are the benchmarks CI's bench job gates with cmd/benchdiff:
// end-to-end construction and the three scale-evaluated estimators on a
// 100-PoP / 9900-demand backbone. Named with the Scale prefix so
// `go test -bench Scale` selects exactly this set.

var (
	scaleOnce sync.Once
	scaleInst *scenario.Instance
	scaleErr  error
)

func scale100(b *testing.B) *scenario.Instance {
	b.Helper()
	if testing.Short() {
		b.Skip("scale benchmarks are slow; skipping in -short mode")
	}
	scaleOnce.Do(func() { scaleInst, scaleErr = scenario.Build("scaled:100", 1) })
	if scaleErr != nil {
		b.Fatalf("scenario.Build: %v", scaleErr)
	}
	return scaleInst
}

// BenchmarkScaleScenarioBuild100 measures materializing the full 100-PoP
// instance: topology generation, parallel per-source routing, calibrated
// 288-interval traffic, busy-window ground truth.
func BenchmarkScaleScenarioBuild100(b *testing.B) {
	if testing.Short() {
		b.Skip("scale benchmarks are slow; skipping in -short mode")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Build("scaled:100", int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleRoute100 isolates routing-matrix construction (one
// Dijkstra tree per source, fanned out on the routing pool).
func BenchmarkScaleRoute100(b *testing.B) {
	if testing.Short() {
		b.Skip("scale benchmarks are slow; skipping in -short mode")
	}
	net, err := topology.Scaled(1, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Route(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScaleMethod benchmarks one scenario-lab method on the shared
// 100-PoP instance and reports its MRE.
func benchScaleMethod(b *testing.B, name string) {
	in := scale100(b)
	var method scenario.Method
	for _, m := range scenario.Methods(scenario.DefaultBudget()) {
		if m.Name == name {
			method = m
		}
	}
	if method.Run == nil {
		b.Fatalf("unknown method %s", name)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var mre float64
	for i := 0; i < b.N; i++ {
		est, _, err := method.Run(in)
		if err != nil {
			b.Fatal(err)
		}
		mre = core.MRE(est, in.Truth, in.Thresh)
	}
	b.ReportMetric(mre, "MRE")
}

func BenchmarkScaleGravity100(b *testing.B) { benchScaleMethod(b, "gravity") }
func BenchmarkScaleEntropy100(b *testing.B) { benchScaleMethod(b, "entropy") }
func BenchmarkScaleVardi100(b *testing.B)   { benchScaleMethod(b, "vardi") }

// BenchmarkScaleEvaluate100 runs the whole cross-method harness (the
// instance × method grid on the shared pool) over the 100-PoP instance.
func BenchmarkScaleEvaluate100(b *testing.B) {
	in := scale100(b)
	methods := scenario.Methods(scenario.DefaultBudget())
	pool := runner.NewPool(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := scenario.Evaluate(context.Background(), pool, []*scenario.Instance{in}, methods)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatalf("%s/%s: %v", r.Spec, r.Method, r.Err)
			}
		}
	}
}

// --- Streaming re-solve benchmarks (cold vs warm start) ---
//
// The internal/stream engine re-solves the full traffic matrix interval
// after interval on a slowly drifting window, warm-starting each solve
// from the previously published estimate. These two benchmarks measure
// exactly that steady-state step — the entropy re-solve of a window
// shifted one interval past an already-solved one, at the engine's
// default budget — cold (from the gravity prior) and warm (from the
// adjacent window's solution). CI's bench job gates both against the
// checked-in baselines; the >= 2x iteration ratio itself is pinned by
// TestEntropyWarmStartEquivalentAndFaster in internal/core.

var (
	streamResolveOnce sync.Once
	streamResolveErr  error
	streamResolveIn   *core.Instance
	streamResolvePre  []linalg.Vector // prior1, prev (warm start)
)

// streamResolveSetup builds the shifted-window pair: the previous
// window's converged estimate is the warm start for the next window's
// solve, exactly as the streaming engine carries it forward.
func streamResolveSetup(b *testing.B) (in *core.Instance, prior, prev linalg.Vector) {
	b.Helper()
	if testing.Short() {
		b.Skip("stream re-solve benchmarks are skipped in -short mode")
	}
	streamResolveOnce.Do(func() {
		sc, err := netsim.BuildEurope(1)
		if err != nil {
			streamResolveErr = err
			return
		}
		const k = 6
		start := sc.BusyWindow(k)
		if start+k+1 > len(sc.Series.Demands) {
			start--
		}
		mean := func(start int) linalg.Vector {
			m := linalg.NewVector(sc.Rt.R.Rows())
			for _, l := range sc.LoadSeries(start, k) {
				linalg.Axpy(1, l, m)
			}
			m.Scale(1 / float64(k))
			return m
		}
		in0, err := core.NewInstance(sc.Rt, mean(start))
		if err != nil {
			streamResolveErr = err
			return
		}
		prev, _, err := core.EntropyFrom(in0, core.Gravity(in0), streamReg, nil, streamIter, streamTol)
		if err != nil {
			streamResolveErr = err
			return
		}
		in1, err := core.NewInstance(sc.Rt, mean(start+1))
		if err != nil {
			streamResolveErr = err
			return
		}
		streamResolveIn = in1
		streamResolvePre = []linalg.Vector{core.Gravity(in1), prev}
	})
	if streamResolveErr != nil {
		b.Fatal(streamResolveErr)
	}
	return streamResolveIn, streamResolvePre[0], streamResolvePre[1]
}

// streamReg/streamIter/streamTol mirror the stream.Config defaults
// (Reg, ResolveMaxIter, ResolveTol).
const (
	streamReg  = 1000
	streamIter = 20000
	streamTol  = 1e-6
)

func benchStreamResolve(b *testing.B, warm bool) {
	in, prior, prev := streamResolveSetup(b)
	x0 := linalg.Vector(nil)
	if warm {
		x0 = prev
	}
	b.ReportAllocs()
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		_, n, err := core.EntropyFrom(in, prior, streamReg, x0, streamIter, streamTol)
		if err != nil {
			b.Fatal(err)
		}
		iters = n
	}
	b.ReportMetric(float64(iters), "iterations")
}

func BenchmarkStreamResolveCold(b *testing.B) { benchStreamResolve(b, false) }
func BenchmarkStreamResolveWarm(b *testing.B) { benchStreamResolve(b, true) }

// BenchmarkScenarioBuild measures end-to-end scenario construction
// (topology + routing + calibrated series).
func BenchmarkScenarioBuild(b *testing.B) {
	b.Run("europe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := netsim.BuildEurope(int64(i + 1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("america", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := netsim.BuildAmerica(int64(i + 1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFleetResolveFanout measures multi-tenant re-solve throughput
// on the fleet's shared runner pool: 8 single-region tenants (distinct
// seeds) replay their series concurrently and every tenant's final
// window must complete a full entropy re-solve. This is the serving
// path `tmserve -fleet` runs per re-solve wave; the benchdiff gate
// watches it for scheduler regressions (claim contention, lost
// wake-ups) as much as solver ones.
func BenchmarkFleetResolveFanout(b *testing.B) {
	if testing.Short() {
		b.Skip("fleet fan-out benchmark is slow; skipping in -short mode")
	}
	const tenants, cycles = 8, 4
	scs := make([]*netsim.Scenario, tenants)
	for i := range scs {
		sc, err := netsim.BuildEurope(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		scs[i] = sc
	}
	spec := fleet.TenantSpec{
		Cycles: cycles, Pace: "0", Window: 2, ResolveEvery: cycles,
		Method: "entropy",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		f := fleet.New(runner.NewPool(0), fleet.Options{})
		for i, sc := range scs {
			sc, store := sc, collector.NewStore(scs[i].Net.NumPairs())
			s := spec
			s.Name = fmt.Sprintf("t%d", i)
			if _, err := f.AddFeed(s, sc, fleet.Feed{
				Store: store,
				Collect: func(ctx context.Context) error {
					return collector.Replay(ctx, store, sc.Series, cycles, 0)
				},
			}); err != nil {
				b.Fatal(err)
			}
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- f.Run(ctx) }()
		for _, t := range f.Tenants() {
			for {
				snap, ok := t.Engine().Latest()
				if ok && snap.Resolve != nil && snap.ResolveInterval == cycles-1 {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
		cancel()
		<-done
	}
	b.StopTimer()
	b.ReportMetric(float64(tenants*b.N)/b.Elapsed().Seconds(), "resolves/s")
}

// benchSource hand-feeds a serve.Hub for the fan-out benchmark: Publish
// makes a snapshot the latest and wakes every pending WaitVersion, like
// a stream.Engine's publication does.
type benchSource struct {
	mu     sync.Mutex
	latest stream.Snapshot
	have   bool
	wake   chan struct{}
}

func newBenchSource() *benchSource { return &benchSource{wake: make(chan struct{})} }

func (s *benchSource) Publish(snap stream.Snapshot) {
	s.mu.Lock()
	s.latest = snap
	s.have = true
	close(s.wake)
	s.wake = make(chan struct{})
	s.mu.Unlock()
}

func (s *benchSource) Latest() (stream.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest, s.have
}

func (s *benchSource) WaitVersion(ctx context.Context, min uint64) (stream.Snapshot, error) {
	for {
		s.mu.Lock()
		if s.have && s.latest.Version >= min {
			snap := s.latest
			s.mu.Unlock()
			return snap, nil
		}
		wake := s.wake
		s.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return stream.Snapshot{}, ctx.Err()
		}
	}
}

// BenchmarkSnapshotFanout is the million-client serving claim's anchor:
// 100k concurrent long-poll clients parked on one tenant's hub, each
// publication serialized exactly once and fanned out to all of them.
// One benchmark iteration is one publication delivered to every client;
// the reported allocs/req must stay ~O(1) — the entry is shared, the
// waiter registrations are pooled, and nothing is re-encoded per client.
func BenchmarkSnapshotFanout(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-client fan-out benchmark is slow; skipping in -short mode")
	}
	const clients = 100_000
	src := newBenchSource()
	h := serve.NewHub(src, serve.HubConfig{MaxWaiters: clients + 16})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go h.Run(ctx)

	// A realistically sized snapshot: a 100-PoP deployment's ~10k pairs.
	vec := linalg.NewVector(9900)
	for i := range vec {
		vec[i] = float64(i) * 0.25
	}
	snapAt := func(version uint64) stream.Snapshot {
		g := vec.Clone()
		g[0] += float64(version)
		return stream.Snapshot{
			Version: version, Interval: int(version), Window: 6,
			Covered: len(vec), Gravity: g, Mean: vec, Fanouts: vec,
			Time: time.Unix(1700000000, 0).UTC(),
		}
	}

	var served atomic.Uint64
	for i := 0; i < clients; i++ {
		go func() {
			next := uint64(1)
			for {
				e, err := h.WaitMin(ctx, next)
				if err != nil {
					return
				}
				next = e.Version + 1
				served.Add(1)
			}
		}()
	}
	// Every client parked before the clock starts.
	for h.Stats().Waiters < clients {
		time.Sleep(time.Millisecond)
	}

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		v := uint64(n + 1)
		src.Publish(snapAt(v))
		for target := uint64(clients) * v; served.Load() < target; {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	requests := uint64(clients) * uint64(b.N)
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(requests), "allocs/req")
	b.ReportMetric(float64(requests)/b.Elapsed().Seconds(), "clients/s")
}

// BenchmarkTimelineSwap measures the mid-stream routing hot-swap path:
// a streaming engine primes a warm window on the base topology, one
// adjacency fails (stream.Engine.SwapRouting remaps the warm iterate
// onto the survivor topology), and the next full re-solve runs
// warm-started on the new routing. This is the per-event cost of a
// scripted fail_link/restore timeline; the benchdiff gate watches both
// the wall time and the post-swap iteration count.
func BenchmarkTimelineSwap(b *testing.B) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		b.Fatal(err)
	}
	// First removable interior adjacency that leaves the network routable.
	var failedRt *topology.Routing
	for _, l := range sc.Net.Links {
		if l.Kind != topology.Interior || l.Src > l.Dst {
			continue
		}
		if rt, err := topology.RemoveAdjacency(sc.Net, l.ID).Route(); err == nil {
			failedRt = rt
			break
		}
	}
	if failedRt == nil {
		b.Fatal("no removable adjacency")
	}
	const window, every = 6, 3
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var warmIters int
	for n := 0; n < b.N; n++ {
		eng, err := stream.New(sc.Rt, stream.Config{
			Window: window, ResolveEvery: every, Method: stream.MethodEntropy,
			ResolveDispatch: func() {},
		})
		if err != nil {
			b.Fatal(err)
		}
		store := collector.NewStore(sc.Net.NumPairs())
		runCtx, cancel := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() { done <- eng.Run(runCtx, store) }()
		var version uint64
		feed := func(from, to int) {
			for iv := from; iv < to; iv++ {
				for p, mbps := range sc.Series.Demands[iv] {
					store.Ingest(collector.RateRecord{LSP: p, Interval: iv, RateMbps: mbps, Poller: "bench"})
				}
				version++
				if _, err := eng.WaitVersion(runCtx, version); err != nil {
					b.Fatal(err)
				}
			}
		}
		resolve := func() stream.Snapshot {
			if !eng.TryResolve(runCtx) {
				b.Fatal("no parked re-solve")
			}
			version++
			snap, err := eng.WaitVersion(runCtx, version)
			if err != nil {
				b.Fatal(err)
			}
			return snap
		}
		feed(0, window) // parks at intervals 2 and 5
		resolve()       // cold prime on the base topology
		if err := eng.SwapRouting(failedRt, 1, window); err != nil {
			b.Fatal(err)
		}
		feed(window, window+every) // swap applies, parks at interval 8
		snap := resolve()          // warm re-solve on the failed topology
		if !snap.ResolveWarm || snap.TopologyEpoch != 1 {
			b.Fatalf("post-swap re-solve warm=%v epoch=%d", snap.ResolveWarm, snap.TopologyEpoch)
		}
		warmIters = snap.ResolveIterations
		cancel()
		<-done
	}
	b.ReportMetric(float64(warmIters), "swap-iterations")
}

// BenchmarkPromScrape is the observability layer's anchor: one full
// GET /metrics/prom render over a registry shaped like an 8-tenant
// fleet daemon's — per-tenant latency/iteration histograms with
// recorded observations, warm/cold resolve counters, and scrape-time
// gauge collectors. One iteration is one text-exposition encode; the
// benchdiff gate watches ns/op and allocs/op, pinning the encoder's
// single-buffer render (a scrape must not cost per-sample heap
// traffic, or a 15s-interval Prometheus would tax every tenant).
func BenchmarkPromScrape(b *testing.B) {
	reg := obs.NewRegistry()
	tenants := make([]string, 8)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant-%02d", i)
	}
	durs := reg.Histogram("tm_resolve_duration_seconds", "Wall-clock latency of completed full re-solves.", nil, "tenant")
	iters := reg.Histogram("tm_resolve_iterations", "Solver iterations per completed full re-solve.",
		[]float64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 20000}, "tenant")
	resolves := reg.Counter("tm_resolves_total", "Completed full re-solves by warm-vs-cold start.", "tenant", "warm")
	for ti, tn := range tenants {
		for k := 0; k < 64; k++ {
			durs.With(tn).Observe(float64(ti+1) * float64(k) * 0.003)
			iters.With(tn).Observe(float64(50 + 97*k))
		}
		resolves.With(tn, "true").Add(60)
		resolves.With(tn, "false").Add(4)
	}
	perTenant := func(scale float64) func(obs.Emit) {
		return func(emit obs.Emit) {
			for i, tn := range tenants {
				emit(scale*float64(i+1), tn)
			}
		}
	}
	for _, g := range []struct {
		name  string
		scale float64
	}{
		{"tm_snapshot_version", 40}, {"tm_interval", 23}, {"tm_window_intervals", 6},
		{"tm_window_coverage", 0.115}, {"tm_drift", 0.0125}, {"tm_topology_epoch", 1},
		{"tm_gravity_mre", 0.021}, {"tm_resolve_mre", 0.011}, {"tm_anomaly_active", 0},
	} {
		reg.GaugeFunc(g.name, "bench gauge "+g.name+".", []string{"tenant"}, perTenant(g.scale))
	}
	reg.CounterFunc("tm_anomalies_total", "Drift-anomaly episodes.", []string{"tenant"}, perTenant(2))
	reg.GaugeFunc("tm_fleet_tenants", "Tenants hosted.", nil, func(emit obs.Emit) { emit(8) })

	var n int64
	{
		m, err := reg.WriteTo(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		n = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "exposition-bytes")
}
