// Package repro is a from-scratch Go reproduction of
//
//	"Traffic Matrix Estimation on a Large IP Backbone — A Comparison on
//	Real Data", Gunnar, Johansson & Telkamp, ACM IMC 2004.
//
// The repository implements the paper's complete system: the
// MPLS/SNMP-style measurement substrate (internal/collector), backbone
// topology and CSPF routing simulation (internal/topology), a demand
// generator calibrated to the paper's statistical findings
// (internal/traffic), every estimation method the paper evaluates
// (internal/core), the numerical machinery they need — dense/sparse linear
// algebra, a warm-startable simplex LP, NNLS, FISTA, iterative proportional
// fitting (internal/linalg, internal/sparse, internal/solver) — and one
// experiment driver per table and figure of the evaluation section
// (internal/experiments).
//
// The experiment suite runs on a concurrent execution engine
// (internal/runner): a bounded worker pool sized to the machine schedules
// whole drivers and the sweep loops inside them, while reports are always
// emitted in paper order — so the rendered reports of a parallel run are
// byte-identical to a serial one (tmbench's -quiet flag drops the
// timing lines, which are the only nondeterministic output).
//
// Beyond the batch experiments, internal/stream runs the estimators
// continuously over the collector's poll windows — incremental gravity
// every interval, periodic full re-solves on a dedicated latest-wins
// worker, versioned snapshots — and cmd/tmserve serves the evolving
// matrix over HTTP/JSON from a live simulated deployment or a
// deterministic scenario replay.
//
// METHODS.md maps every estimation method of the paper to its entry
// point and the experiments that evaluate it.
//
// Start with examples/quickstart (batch) or examples/streaming (online),
// or run the full evaluation with
//
//	go run ./cmd/tmbench              # all cores
//	go run ./cmd/tmbench -parallel 1  # fully serial, same output
//	go run ./cmd/tmbench -run fig13   # selected experiments
//
// The benchmarks in bench_test.go regenerate every table and figure
// (BENCH_seed.json pins the checked-in baseline):
//
//	go test -bench=. -benchmem
package repro
