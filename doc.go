// Package repro is a from-scratch Go reproduction of
//
//	"Traffic Matrix Estimation on a Large IP Backbone — A Comparison on
//	Real Data", Gunnar, Johansson & Telkamp, ACM IMC 2004.
//
// The repository implements the paper's complete system: the
// MPLS/SNMP-style measurement substrate (internal/collector), backbone
// topology and CSPF routing simulation (internal/topology), a demand
// generator calibrated to the paper's statistical findings
// (internal/traffic), every estimation method the paper evaluates
// (internal/core), the numerical machinery they need — dense/sparse linear
// algebra, a warm-startable simplex LP, NNLS, FISTA, iterative proportional
// fitting (internal/linalg, internal/sparse, internal/solver) — and one
// experiment driver per table and figure of the evaluation section
// (internal/experiments).
//
// Start with examples/quickstart, or run the full evaluation with
//
//	go run ./cmd/tmbench
//
// The benchmarks in bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem
package repro
